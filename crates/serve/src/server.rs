//! The concurrent bias-analysis server.
//!
//! Architecture: one **acceptor** thread owns the listener and applies
//! admission control — a bounded connection queue; overflow is answered
//! immediately with a clean `503` instead of an ever-growing backlog.
//! A fixed set of **worker** threads pops connections, parses one
//! request each (`Connection: close`), and routes it. Workers run every
//! pipeline call under `hypdb-exec`'s nested-fan-out guard (when more
//! than one worker is configured), so the parallelism budget is spent
//! *across* requests while each request's internal fan-outs run inline
//! — concurrent load never multiplies into `workers × threads` threads.
//!
//! **Reproducibility.** A request's report is a pure function of
//! (dataset, base config, canonical request bytes): the wire layer
//! derives the RNG seed from the base seed and the request fingerprint,
//! and response bodies zero the wall-clock timings. Identical requests
//! therefore produce byte-identical bodies at any worker count, thread
//! count, or shard layout — which is what makes the report cache sound:
//! it is keyed on the fingerprint and only ever stores values that any
//! racing computation would reproduce exactly.
//!
//! **Shutdown.** [`ServerHandle::shutdown`] flips a flag: the acceptor
//! stops accepting, workers drain the queue and finish in-flight
//! requests, and every thread is joined before the call returns.

use crate::cache::ByteLruCache;
use crate::http::{self, Request, RequestError, Response};
use crate::journal::{self, RequestRecord};
use crate::metrics::{self, Endpoint, Metrics, MetricsSnapshot};
use crate::registry::Registry;
use hypdb_core::HypDbConfig;
use hypdb_core::{wire, Error as CoreError, OracleCache, OracleStats};
use hypdb_exec::{seed, with_fanout_guard};
use hypdb_obs::{Deadline, Journal, RollingWindow, Tick, TraceEntry, TraceRing};
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Rendered request records retained in memory for `GET
/// /debug/requests` (independent of `HYPDB_JOURNAL`; populated
/// whenever the flight recorder is enabled).
const REQUESTS_LOG_CAP: usize = 128;

/// Default trace retention-ring capacity (`HYPDB_DEBUG_TRACES`
/// overrides; 0 disables retention and the in-memory request log).
const DEFAULT_DEBUG_TRACES: usize = 16;

/// Server configuration. Every field has an `HYPDB_SERVE_*` environment
/// override (see [`ServeConfig::from_env`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:7878` by default; port `0` = ephemeral).
    pub addr: String,
    /// Request worker threads (default: the global worker count).
    pub workers: usize,
    /// Admission-queue capacity; connections beyond it get `503`.
    pub queue_capacity: usize,
    /// Maximum request-body bytes; larger bodies get `413`.
    pub max_body: usize,
    /// Per-connection read/write timeout in milliseconds.
    pub timeout_ms: u64,
    /// Report-cache byte budget; least-recently-used responses are
    /// evicted past it (resident/evicted bytes appear in `/metrics`).
    pub cache_bytes: usize,
    /// Base pipeline configuration; per-request seeds derive from its
    /// `ci.seed` and the request fingerprint.
    pub base: HypDbConfig,
    /// Request-journal path (`HYPDB_JOURNAL`); `None` disables the
    /// on-disk flight recorder.
    pub journal: Option<String>,
    /// Trace retention-ring capacity (`HYPDB_DEBUG_TRACES`; default
    /// 16, 0 disables retention and the in-memory request log).
    pub debug_traces: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".into(),
            workers: hypdb_exec::global_threads(),
            queue_capacity: 64,
            max_body: 64 * 1024,
            timeout_ms: 30_000,
            cache_bytes: 64 << 20,
            base: HypDbConfig::default(),
            journal: None,
            debug_traces: DEFAULT_DEBUG_TRACES,
        }
    }
}

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

impl ServeConfig {
    /// The default configuration with environment overrides applied:
    /// `HYPDB_SERVE_ADDR`, `HYPDB_SERVE_WORKERS`, `HYPDB_SERVE_QUEUE`,
    /// `HYPDB_SERVE_MAX_BODY`, `HYPDB_SERVE_TIMEOUT_MS`,
    /// `HYPDB_SERVE_CACHE_BYTES`, plus the flight recorder's
    /// `HYPDB_JOURNAL` (journal path) and `HYPDB_DEBUG_TRACES`
    /// (retention-ring capacity, 0 disables).
    pub fn from_env() -> ServeConfig {
        let mut cfg = ServeConfig::default();
        if let Ok(addr) = std::env::var("HYPDB_SERVE_ADDR") {
            cfg.addr = addr;
        }
        if let Some(w) = env_parse::<usize>("HYPDB_SERVE_WORKERS").filter(|&w| w > 0) {
            cfg.workers = w;
        }
        if let Some(q) = env_parse::<usize>("HYPDB_SERVE_QUEUE").filter(|&q| q > 0) {
            cfg.queue_capacity = q;
        }
        if let Some(b) = env_parse::<usize>("HYPDB_SERVE_MAX_BODY").filter(|&b| b > 0) {
            cfg.max_body = b;
        }
        if let Some(t) = env_parse::<u64>("HYPDB_SERVE_TIMEOUT_MS").filter(|&t| t > 0) {
            cfg.timeout_ms = t;
        }
        if let Some(b) = env_parse::<usize>("HYPDB_SERVE_CACHE_BYTES").filter(|&b| b > 0) {
            cfg.cache_bytes = b;
        }
        if let Ok(path) = std::env::var("HYPDB_JOURNAL") {
            if !path.trim().is_empty() {
                cfg.journal = Some(path);
            }
        }
        if let Some(n) = env_parse::<usize>("HYPDB_DEBUG_TRACES") {
            cfg.debug_traces = n;
        }
        cfg
    }
}

/// The bounded admission queue (mutex + condvar; no busy worker spins).
/// Each connection carries its enqueue [`Tick`] so the pop side can
/// feed the `hypdb_queue_wait_seconds` histogram.
struct Queue {
    inner: Mutex<VecDeque<(TcpStream, Tick)>>,
    ready: Condvar,
    capacity: usize,
}

impl Queue {
    fn new(capacity: usize) -> Queue {
        Queue {
            inner: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, VecDeque<(TcpStream, Tick)>> {
        // Poisoning is ignored: the queue holds plain sockets that stay
        // structurally valid if a holder panicked.
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Enqueues a connection, or hands it back when full.
    fn push(&self, stream: TcpStream, metrics: &Metrics) -> Result<(), TcpStream> {
        let mut q = self.lock();
        if q.len() >= self.capacity {
            return Err(stream);
        }
        q.push_back((stream, Tick::now()));
        metrics.set_queue_depth(q.len());
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Pops the next connection (with the seconds it waited in the
    /// queue); `None` once the acceptor has retired **and** the queue
    /// has drained (graceful-drain semantics). Gating on the acceptor —
    /// not on the shutdown flag directly — closes the race where a
    /// connection accepted just as shutdown is signalled would be
    /// queued after every worker had already exited.
    fn pop(&self, accepting: &AtomicBool, metrics: &Metrics) -> Option<(TcpStream, f64)> {
        let mut q = self.lock();
        loop {
            if let Some((stream, enqueued)) = q.pop_front() {
                metrics.set_queue_depth(q.len());
                let waited = enqueued.elapsed_secs();
                metrics.observe_queue_wait(waited);
                return Some((stream, waited));
            }
            if !accepting.load(Ordering::Relaxed) {
                return None;
            }
            q = self
                .ready
                .wait_timeout(q, Duration::from_millis(50))
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .0;
        }
    }

    fn len(&self) -> usize {
        self.lock().len()
    }
}

/// Which report lane a request takes (also the cache-key namespace).
#[derive(Debug, Clone, Copy)]
enum Lane {
    Analyze,
    Detect,
}

impl Lane {
    fn tag(self) -> u64 {
        match self {
            Lane::Analyze => 0xA11A,
            Lane::Detect => 0xDE7E,
        }
    }
}

/// Per-endpoint and per-dataset rolling request windows backing the
/// `hypdb_window_*` gauge families in `/metrics`.
struct Windows {
    analyze: RollingWindow,
    detect: RollingWindow,
    other: RollingWindow,
    /// Lazily created per registered dataset — bounded by the registry,
    /// since only resolved dataset names create a window.
    datasets: Mutex<BTreeMap<String, Arc<RollingWindow>>>,
}

impl Windows {
    fn new() -> Windows {
        Windows {
            analyze: RollingWindow::new(),
            detect: RollingWindow::new(),
            other: RollingWindow::new(),
            datasets: Mutex::new(BTreeMap::new()),
        }
    }

    fn endpoint(&self, endpoint: Endpoint) -> &RollingWindow {
        match endpoint {
            Endpoint::Analyze => &self.analyze,
            Endpoint::Detect => &self.detect,
            Endpoint::Other => &self.other,
        }
    }

    fn dataset(&self, name: &str) -> Arc<RollingWindow> {
        let mut map = self
            .datasets
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(RollingWindow::new())),
        )
    }

    fn render(&self) -> String {
        let map = self
            .datasets
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut series: Vec<(String, &RollingWindow)> = vec![
            ("endpoint=\"analyze\"".into(), &self.analyze),
            ("endpoint=\"detect\"".into(), &self.detect),
            ("endpoint=\"other\"".into(), &self.other),
        ];
        for (name, window) in map.iter() {
            series.push((format!("dataset=\"{name}\""), window));
        }
        metrics::render_windows(&series)
    }
}

/// What the report lanes learn about a request as it runs — the
/// structural half of its journal record, threaded by `&mut` from
/// [`routed`] down through [`report_endpoint`].
#[derive(Default)]
struct RequestMeta {
    dataset: Option<String>,
    fingerprint: Option<String>,
    canonical: Option<String>,
    /// `Some(true)` report-cache hit, `Some(false)` computed.
    cache: Option<bool>,
    /// Oracle/planner work delta attributable to this request
    /// (exact under sequential driving; under concurrent load over one
    /// shared selection it may include a neighbour's coalesced work).
    planner: Option<OracleStats>,
}

/// State shared by the acceptor, the workers, and the handle.
struct Shared {
    cfg: ServeConfig,
    registry: Registry,
    queue: Queue,
    metrics: Metrics,
    /// The on-disk request journal (`HYPDB_JOURNAL`), when configured.
    /// Mutex-wrapped so shutdown can take and close it (joining the
    /// writer guarantees the file is complete before `shutdown`
    /// returns); appends hold the lock for one `try_send`.
    journal: Mutex<Option<Journal>>,
    /// Whether a journal was configured (checked without the lock).
    journal_on: bool,
    /// Finished-trace retention behind `GET /debug/traces`.
    ring: TraceRing,
    /// Rolling 1m/5m request windows for `/metrics`.
    windows: Windows,
    /// The last [`REQUESTS_LOG_CAP`] rendered journal lines, newest
    /// last — `GET /debug/requests` works with or without a journal
    /// file.
    requests_log: Mutex<VecDeque<String>>,
    /// Request sequence numbers (1-based, per server instance — so a
    /// sequentially driven workload journals deterministically).
    next_id: AtomicU64,
    /// Server start; the uptime gauge and journal `offset_ms` base.
    start: Tick,
    /// Fingerprint-keyed response bodies, byte-bounded with LRU
    /// eviction; values are immutable and any racing recomputation
    /// produces identical bytes, so last-wins insertion is
    /// unobservable. The canonical request is stored with each body and
    /// re-compared on probe: a 64-bit fingerprint can collide, and a
    /// collision must compute, never serve the wrong report.
    cache: ByteLruCache,
    shutdown: AtomicBool,
    /// True until the acceptor retires; workers only exit once this
    /// clears (no connection can be enqueued with nobody left to serve
    /// it) and the queue has drained.
    accepting: AtomicBool,
    /// Run request pipelines under the nested-fan-out guard (true when
    /// more than one worker owns the parallelism budget).
    guard: bool,
}

/// The server constructor; [`Server::start`] returns a handle.
pub struct Server;

impl Server {
    /// Binds `cfg.addr`, spawns the acceptor and `cfg.workers` workers,
    /// and returns a handle. The registry is immutable from here on —
    /// workers share its tables by `Arc` without any locking.
    pub fn start(cfg: ServeConfig, registry: Registry) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let journal = match &cfg.journal {
            Some(path) => Some(Journal::open(path)?),
            None => None,
        };
        let shared = Arc::new(Shared {
            queue: Queue::new(cfg.queue_capacity),
            metrics: Metrics::default(),
            cache: ByteLruCache::new(cfg.cache_bytes),
            shutdown: AtomicBool::new(false),
            accepting: AtomicBool::new(true),
            guard: workers > 1,
            journal_on: journal.is_some(),
            journal: Mutex::new(journal),
            ring: TraceRing::new(cfg.debug_traces),
            windows: Windows::new(),
            requests_log: Mutex::new(VecDeque::new()),
            next_id: AtomicU64::new(0),
            start: Tick::now(),
            registry,
            cfg,
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("hypdb-serve-acceptor".into())
                .spawn(move || acceptor_loop(&shared, &listener))?
        };
        let worker_handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hypdb-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }
}

/// A running server: address, metrics, and graceful shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port `0` to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time metrics snapshot (queue gauge refreshed).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.set_queue_depth(self.shared.queue.len());
        self.shared.metrics.snapshot()
    }

    /// Number of cached report bodies.
    pub fn cache_len(&self) -> usize {
        self.shared.cache.len()
    }

    /// Report-cache byte accounting (entries, resident bytes, evictions).
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.shared.cache.stats()
    }

    /// Aggregated oracle work counters over every shared
    /// (dataset, selection) cache slot.
    pub fn oracle_stats(&self) -> hypdb_core::OracleStats {
        self.shared.registry.oracle_stats()
    }

    /// Graceful shutdown: stop accepting, drain queued and in-flight
    /// requests, join every thread. Idempotent via [`Drop`]. Returns
    /// the final metrics — counted *after* the drain, so requests
    /// completed during shutdown are included.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shutdown_inner();
        self.shared.metrics.snapshot()
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.queue.ready.notify_all();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Workers are gone: close the journal so every accepted record
        // is on disk before shutdown returns.
        let taken = self
            .shared
            .journal
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take();
        if let Some(journal) = taken {
            journal.close();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn acceptor_loop(shared: &Shared, listener: &TcpListener) {
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Accepted sockets block with deadlines: reads are
                // bounded by a per-connection budget (`read_request`
                // shrinks the socket timeout to the time remaining, so
                // a byte-trickling client cannot reset it), and every
                // write syscall is bounded by `timeout_ms`.
                let timeout = Duration::from_millis(shared.cfg.timeout_ms.max(1));
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_write_timeout(Some(timeout));
                let _ = stream.set_nodelay(true);
                let accepted = Tick::now();
                if let Err(mut rejected) = shared.queue.push(stream, &shared.metrics) {
                    shared.metrics.rejected();
                    // The overflow path waits too (accept → rejection):
                    // observe it so `hypdb_queue_wait_seconds` covers
                    // every connection, not just the admitted ones, and
                    // count the 503 in the labelled request family.
                    shared.metrics.observe_queue_wait(accepted.elapsed_secs());
                    shared.metrics.observe_status("rejected", 503);
                    let resp = Response::error(503, "server busy: admission queue is full")
                        .with_header("Retry-After", "1");
                    let _ = http::write_response(&mut rejected, &resp);
                    let _ = rejected.shutdown(Shutdown::Both);
                }
            }
            // Nonblocking accept: poll the shutdown flag a few hundred
            // times a second; transient errors take the same nap.
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    // Retire: no further pushes can happen, so workers may now exit
    // once the queue is drained. Wake any parked worker to observe it.
    shared.accepting.store(false, Ordering::Relaxed);
    shared.queue.ready.notify_all();
}

fn worker_loop(shared: &Shared) {
    while let Some((mut stream, queue_wait)) = shared.queue.pop(&shared.accepting, &shared.metrics)
    {
        let _in_flight = shared.metrics.enter();
        handle_connection(shared, &mut stream, queue_wait);
    }
}

fn handle_connection(shared: &Shared, stream: &mut TcpStream, queue_wait: f64) {
    // The client has `timeout_ms` to deliver its complete request; the
    // budget starts when a worker picks the connection up (compute time
    // afterwards is the server's, not counted against the client).
    let deadline = Deadline::after(Duration::from_millis(shared.cfg.timeout_ms.max(1)));
    let resp = match http::read_request(stream, shared.cfg.max_body, deadline) {
        Ok(req) => {
            shared.metrics.request();
            routed(shared, &req, queue_wait)
        }
        // Peer vanished or timed out before completing a request:
        // there is nobody to answer.
        Err(RequestError::Io(_)) => return,
        Err(RequestError::Bad(msg)) => Response::error(400, msg),
        Err(RequestError::LengthRequired) => Response::error(411, "Content-Length required"),
        Err(RequestError::TooLarge { limit }) => {
            Response::error(413, format!("request body exceeds {limit} bytes"))
        }
        Err(RequestError::HeadTooLarge) => Response::error(431, "request head too large"),
    };
    if (400..500).contains(&resp.status) {
        shared.metrics.client_error();
    }
    let _ = http::write_response(stream, &resp);
    let _ = stream.shutdown(Shutdown::Both);
}

/// [`route`] wrapped in the flight-recorder middleware: times the
/// request into its endpoint's duration histogram and rolling windows,
/// counts it in `hypdb_requests_total{endpoint,status}`, retains its
/// span tree in the trace ring, journals one `hypdb-journal/v1` record,
/// and — when `HYPDB_TRACE` is armed — dumps slow span trees to stderr.
/// Response **bodies** are untouched; the request id is surfaced in the
/// `X-Hypdb-Request-Id` header only.
fn routed(shared: &Shared, req: &Request, queue_wait: f64) -> Response {
    let endpoint = Endpoint::of_path(&req.path);
    let seq = shared.next_id.fetch_add(1, Ordering::Relaxed) + 1;
    let recording = shared.journal_on || shared.ring.is_enabled();
    let tick = Tick::now();
    let mut meta = RequestMeta::default();
    let (resp, report) = if recording || hypdb_obs::trace_threshold().is_some() {
        // Explain-capable so an explain-lane request keeps its compute
        // spans in this tracer's report; the sink costs nothing unless
        // the pipeline records into it.
        let tracer = hypdb_obs::Tracer::with_explain();
        let resp = hypdb_obs::with_request(&tracer, || route(shared, req, &mut meta));
        (resp, Some(tracer.finish()))
    } else {
        (route(shared, req, &mut meta), None)
    };
    let elapsed = tick.elapsed();
    let secs = elapsed.as_secs_f64();
    if let Some(report) = &report {
        hypdb_obs::maybe_dump(seq, &req.path, elapsed, report);
        shared.ring.record(TraceEntry {
            seq,
            tag: req.path.clone(),
            millis: secs * 1e3,
            report: report.clone(),
        });
    }
    shared.metrics.observe_request(endpoint, secs);
    shared.metrics.observe_status(endpoint.label(), resp.status);
    let error = resp.status >= 400;
    shared.windows.endpoint(endpoint).observe(secs, error);
    if let Some(dataset) = &meta.dataset {
        shared.windows.dataset(dataset).observe(secs, error);
    }
    if recording {
        let line = journal::render_record(&RequestRecord {
            seq,
            method: &req.method,
            path: &req.path,
            dataset: meta.dataset.as_deref(),
            fingerprint: meta.fingerprint.as_deref(),
            canonical: meta.canonical.as_deref(),
            cache: meta.cache,
            status: resp.status,
            body: resp.body.as_str(),
            planner: meta.planner,
            report: report.as_ref(),
            offset_ms: shared.start.elapsed_secs() * 1e3,
            queue_wait_ms: queue_wait * 1e3,
            total_ms: secs * 1e3,
        });
        if shared.journal_on {
            let guard = shared
                .journal
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if let Some(journal) = guard.as_ref() {
                journal.append(line.clone());
            }
        }
        let mut log = shared
            .requests_log
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if log.len() == REQUESTS_LOG_CAP {
            log.pop_front();
        }
        log.push_back(line);
    }
    resp.with_header("X-Hypdb-Request-Id", wire::request_id(seq))
}

fn route(shared: &Shared, req: &Request, meta: &mut RequestMeta) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::json(
            200,
            format!(
                "{{\"status\":\"ok\",\"datasets\":{}}}",
                shared.registry.len()
            ),
        ),
        ("GET", "/metrics") => {
            shared.metrics.set_queue_depth(shared.queue.len());
            let mut body = shared.metrics.snapshot().render();
            body.push_str(&shared.metrics.render_requests_total());
            body.push_str(&metrics::render_build_info(shared.start.elapsed_secs()));
            body.push_str(&metrics::render_journal_dropped());
            body.push_str(&metrics::render_cache_stats(&shared.cache.stats()));
            // Counters and resident bytes from one pass under one lock
            // (the same snapshot path the CLI footer renders).
            body.push_str(&shared.registry.oracle_snapshot().render());
            body.push_str(&shared.metrics.render_histograms());
            body.push_str(&shared.windows.render());
            Response::text(200, body)
        }
        ("GET", "/datasets") => {
            let infos = shared.registry.infos();
            match serde_json::to_string(&infos) {
                Ok(body) => Response::json(200, body),
                Err(e) => Response::error(500, format!("serializing dataset list: {e}")),
            }
        }
        ("GET", "/debug/traces") => Response::json(200, shared.ring.to_json()),
        ("GET", "/debug/requests") => {
            let log = shared
                .requests_log
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            let mut body = format!("{{\"count\":{},\"records\":[", log.len());
            for (i, line) in log.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(line);
            }
            body.push_str("]}");
            Response::json(200, body)
        }
        ("GET", "/debug/config") => Response::json(200, debug_config_body(shared)),
        ("POST", "/analyze") => {
            shared.metrics.analyze();
            report_endpoint(shared, &req.body, Lane::Analyze, meta)
        }
        ("POST", "/detect") => {
            shared.metrics.detect();
            report_endpoint(shared, &req.body, Lane::Detect, meta)
        }
        (
            _,
            "/healthz" | "/metrics" | "/datasets" | "/analyze" | "/detect" | "/debug/traces"
            | "/debug/requests" | "/debug/config",
        ) => Response::error(405, format!("method {} not allowed here", req.method)),
        (_, path) => Response::error(404, format!("no such endpoint `{path}`")),
    }
}

/// The `GET /debug/config` body: the effective serve configuration and
/// flight-recorder arming, for "what is this server actually running
/// with" debugging.
fn debug_config_body(shared: &Shared) -> String {
    let cfg = &shared.cfg;
    let mut body = format!(
        "{{\"version\":\"{}\",\"addr\":{},\"workers\":{},\"queue_capacity\":{},\
         \"max_body\":{},\"timeout_ms\":{},\"cache_bytes\":{}",
        env!("CARGO_PKG_VERSION"),
        journal::json_str(&cfg.addr),
        cfg.workers,
        cfg.queue_capacity,
        cfg.max_body,
        cfg.timeout_ms,
        cfg.cache_bytes,
    );
    body.push_str(",\"journal\":");
    match &cfg.journal {
        Some(path) => body.push_str(&journal::json_str(path)),
        None => body.push_str("null"),
    }
    body.push_str(",\"trace_threshold_ms\":");
    match hypdb_obs::trace_threshold() {
        Some(t) => body.push_str(&format!("{}", t.as_millis())),
        None => body.push_str("null"),
    }
    body.push_str(&format!(
        ",\"debug_traces\":{},\"requests_log_capacity\":{},\"guarded\":{},\"datasets\":{}}}",
        cfg.debug_traces,
        REQUESTS_LOG_CAP,
        shared.guard,
        shared.registry.len(),
    ));
    body
}

/// The `/analyze` and `/detect` lanes: parse → registry lookup → cache
/// probe → shared-oracle resolution → (guarded) pipeline run → cache
/// fill.
fn report_endpoint(shared: &Shared, body: &str, lane: Lane, meta: &mut RequestMeta) -> Response {
    let areq = match wire::parse_request(body) {
        Ok(r) => r,
        Err(e) => return Response::error(400, e.to_string()),
    };
    let Some(table) = shared.registry.get(&areq.dataset) else {
        return Response::error(404, format!("unknown dataset `{}`", areq.dataset));
    };
    let canonical = areq.canonical_json();
    let fingerprint = wire::fingerprint_json(&canonical);
    let fp_hex = format!("{fingerprint:016x}");
    meta.dataset = Some(areq.dataset.clone());
    meta.fingerprint = Some(fp_hex.clone());
    meta.canonical = Some(canonical.clone());
    let key = seed::mix(fingerprint, lane.tag());
    // Fingerprints can collide; only byte-equal requests may share a
    // cached body (the cache re-compares the canonical bytes). A
    // collision falls through and recomputes — correctness over a
    // colliding victim's hit rate.
    if let Some(cached) = shared.cache.get(key, &canonical) {
        shared.metrics.cache_hit();
        meta.cache = Some(true);
        return Response::json_shared(200, cached)
            .with_header("X-Hypdb-Cache", "hit")
            .with_header("X-Hypdb-Fingerprint", fp_hex);
    }
    let planner = &mut meta.planner;
    let mut compute = || -> Result<String, CoreError> {
        // Resolve the shared oracle cache for this (dataset, WHERE
        // selection): concurrent requests over the same selection
        // coalesce their independence-statement batches and hit one
        // another's contingency/entropy entries. Resolved inside the
        // (guarded) compute path so the selection scan runs inline on
        // the request worker, never as an extra unguarded fan-out. A
        // request whose SQL fails to parse skips the slot; the
        // pipeline below reports the error.
        let oracle_cache: Option<Arc<OracleCache>> = areq.query(&*table).ok().map(|q| {
            let rows = q.predicate.select(&*table);
            shared.registry.oracle_cache(&areq.dataset, &rows)
        });
        // Snapshot the slot counters around the run: the difference is
        // this request's planner-decision delta for the journal.
        let before = oracle_cache.as_deref().map(|c| c.stats());
        let result = match lane {
            // `explain:true` rides the analyze lane: the report inside
            // the wrapper is byte-identical to the plain lane's (the
            // seed fingerprint strips the flag), and the cache key
            // differs naturally because the canonical bytes carry it.
            Lane::Analyze if areq.explain => {
                wire::analyze_explained(&*table, &areq, &shared.cfg.base, oracle_cache.as_ref())
                    .map(|(r, e)| wire::explain_body(&r, &e))
            }
            Lane::Analyze => {
                wire::analyze_cached(&*table, &areq, &shared.cfg.base, oracle_cache.as_ref())
                    .map(|r| wire::report_body(&r))
            }
            Lane::Detect => {
                wire::detect_cached(&*table, &areq, &shared.cfg.base, oracle_cache.as_ref())
                    .map(|r| wire::detect_body(&r))
            }
        };
        if let (Some(before), Some(cache)) = (before, oracle_cache.as_deref()) {
            *planner = Some(cache.stats().since(&before));
        }
        result
    };
    let result = if shared.guard {
        with_fanout_guard(compute)
    } else {
        compute()
    };
    match result {
        Ok(body) => {
            shared.metrics.cache_miss();
            meta.cache = Some(false);
            let body = Arc::new(body);
            shared.cache.insert(key, canonical, Arc::clone(&body));
            Response::json_shared(200, body)
                .with_header("X-Hypdb-Cache", "miss")
                .with_header("X-Hypdb-Fingerprint", fp_hex)
        }
        // Every pipeline error is request-shaped: bad SQL, unknown
        // attribute, empty selection, degenerate treatment.
        Err(e) => Response::error(400, e.to_string()),
    }
}
