//! A minimal blocking HTTP client for loopback use.
//!
//! One request per connection, matching the server's
//! `Connection: close` framing: write the request, read to EOF, split
//! head from body. Shared by the example, the throughput bench, and the
//! integration tests so none of them re-implement framing.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// `(name, value)` headers in arrival order (names lower-cased).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// `GET path`.
pub fn get(addr: impl ToSocketAddrs, path: &str) -> io::Result<HttpResponse> {
    request(addr, "GET", path, None)
}

/// `POST path` with a JSON body.
pub fn post_json(addr: impl ToSocketAddrs, path: &str, body: &str) -> io::Result<HttpResponse> {
    request(addr, "POST", path, Some(body))
}

/// Issues one request and reads the full response.
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: hypdb\r\nContent-Length: {}\r\n\
         Content-Type: application/json\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn parse_response(raw: &[u8]) -> io::Result<HttpResponse> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response has no header terminator"))?;
    let head =
        std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("response head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let body = String::from_utf8(raw[head_end + 4..].to_vec())
        .map_err(|_| bad("response body is not UTF-8"))?;
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nX-Hypdb-Cache: hit\r\n\r\n{\"a\":1}";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-hypdb-cache"), Some("hit"));
        assert_eq!(resp.header("X-Hypdb-Cache"), Some("hit"));
        assert_eq!(resp.body, "{\"a\":1}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"nope").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }
}
