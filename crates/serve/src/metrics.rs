//! Server metrics: lock-free counters and the `/metrics` text format.
//!
//! Counters are relaxed atomics — statistics, not synchronisation —
//! rendered in the Prometheus text exposition format so the endpoint
//! can be scraped directly. The snapshot form is also what the test
//! suite asserts cache-consistency against.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counter block shared by acceptor and workers.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: AtomicU64,
    analyze: AtomicU64,
    detect: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    rejected: AtomicU64,
    client_errors: AtomicU64,
    in_flight: AtomicU64,
    queue_depth: AtomicU64,
}

/// A point-in-time copy of every counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// HTTP requests parsed (any endpoint, any outcome).
    pub requests: u64,
    /// `POST /analyze` requests routed.
    pub analyze: u64,
    /// `POST /detect` requests routed.
    pub detect: u64,
    /// Responses served from the report cache.
    pub cache_hits: u64,
    /// Reports computed and inserted into the cache.
    pub cache_misses: u64,
    /// Connections refused with 503 (admission queue full).
    pub rejected: u64,
    /// 4xx responses (bad framing, bad request JSON, unknown dataset).
    pub client_errors: u64,
    /// Connections currently being handled by workers.
    pub in_flight: u64,
    /// Connections waiting in the admission queue.
    pub queue_depth: u64,
}

fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

impl Metrics {
    /// Counts a parsed HTTP request.
    pub fn request(&self) {
        bump(&self.requests);
    }

    /// Counts a routed `/analyze` request.
    pub fn analyze(&self) {
        bump(&self.analyze);
    }

    /// Counts a routed `/detect` request.
    pub fn detect(&self) {
        bump(&self.detect);
    }

    /// Counts a cache hit.
    pub fn cache_hit(&self) {
        bump(&self.cache_hits);
    }

    /// Counts a cache miss (a freshly computed report).
    pub fn cache_miss(&self) {
        bump(&self.cache_misses);
    }

    /// Counts a 503 admission rejection.
    pub fn rejected(&self) {
        bump(&self.rejected);
    }

    /// Counts a 4xx response.
    pub fn client_error(&self) {
        bump(&self.client_errors);
    }

    /// Marks a connection entering a worker; the guard decrements on
    /// drop (panic-safe, so `in_flight` can never leak upward).
    pub fn enter(&self) -> InFlightGuard<'_> {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        InFlightGuard { metrics: self }
    }

    /// Updates the queue-depth gauge.
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth as u64, Ordering::Relaxed);
    }

    /// Copies every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            analyze: self.analyze.load(Ordering::Relaxed),
            detect: self.detect.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            client_errors: self.client_errors.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
        }
    }
}

/// Decrements `in_flight` when a worker finishes a connection.
pub struct InFlightGuard<'a> {
    metrics: &'a Metrics,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

impl MetricsSnapshot {
    /// Renders the Prometheus text exposition format (`/metrics`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut metric = |name: &str, kind: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
            ));
        };
        metric(
            "hypdb_requests_total",
            "counter",
            "HTTP requests parsed",
            self.requests,
        );
        metric(
            "hypdb_analyze_requests_total",
            "counter",
            "POST /analyze requests",
            self.analyze,
        );
        metric(
            "hypdb_detect_requests_total",
            "counter",
            "POST /detect requests",
            self.detect,
        );
        metric(
            "hypdb_report_cache_hits_total",
            "counter",
            "responses served from the report cache",
            self.cache_hits,
        );
        metric(
            "hypdb_report_cache_misses_total",
            "counter",
            "reports computed on a cache miss",
            self.cache_misses,
        );
        metric(
            "hypdb_rejected_total",
            "counter",
            "connections refused with 503 (queue full)",
            self.rejected,
        );
        metric(
            "hypdb_client_errors_total",
            "counter",
            "4xx responses",
            self.client_errors,
        );
        metric(
            "hypdb_in_flight",
            "gauge",
            "connections currently being handled",
            self.in_flight,
        );
        metric(
            "hypdb_queue_depth",
            "gauge",
            "connections waiting for a worker",
            self.queue_depth,
        );
        out
    }
}

/// Renders the aggregated oracle work counters ([`hypdb_core::OracleStats`]
/// summed over every shared oracle-cache slot) in the Prometheus text
/// format — scans, cache hits, marginalisations, entropies, and the
/// multi-query planner's batching counters.
pub fn render_oracle_stats(stats: &hypdb_core::OracleStats) -> String {
    let mut out = String::new();
    let mut metric = |name: &str, help: &str, value: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
        ));
    };
    metric(
        "hypdb_oracle_tests_total",
        "independence tests performed",
        stats.tests,
    );
    metric(
        "hypdb_oracle_table_scans_total",
        "full row scans to build a contingency table",
        stats.table_scans,
    );
    metric(
        "hypdb_oracle_count_cache_hits_total",
        "contingency tables served from the materialisation cache",
        stats.count_cache_hits,
    );
    metric(
        "hypdb_oracle_marginalizations_total",
        "contingency tables derived from a cached superset",
        stats.marginalizations,
    );
    metric(
        "hypdb_oracle_entropy_hits_total",
        "entropies served from the entropy cache",
        stats.entropy_hits,
    );
    metric(
        "hypdb_oracle_entropy_misses_total",
        "entropies computed",
        stats.entropy_misses,
    );
    metric(
        "hypdb_oracle_batched_statements_total",
        "independence statements submitted through the batch planner",
        stats.batched_statements,
    );
    metric(
        "hypdb_oracle_groups_planned_total",
        "statement groups (shared conditioning sets) planned",
        stats.groups_planned,
    );
    metric(
        "hypdb_oracle_scans_direct_total",
        "planner decisions to build a table by direct segment scan",
        stats.scans_direct,
    );
    metric(
        "hypdb_oracle_marginalised_from_superset_total",
        "planner decisions to derive a table from a cached superset",
        stats.marginalised_from_superset,
    );
    metric(
        "hypdb_oracle_lattice_intermediates_total",
        "intermediate marginals materialised by lattice descent",
        stats.lattice_intermediates,
    );
    metric(
        "hypdb_oracle_speculative_skipped_total",
        "round statements skipped by speculation pruning",
        stats.speculative_skipped,
    );
    out
}

/// Renders the resident contingency-table footprint of every shared
/// oracle-cache slot as a gauge (bytes rise as tables materialise and
/// fall when a dataset slot is evicted).
pub fn render_oracle_cache_bytes(bytes: u64) -> String {
    let name = "hypdb_oracle_cache_bytes";
    format!(
        "# HELP {name} bytes resident in shared oracle contingency caches\n\
         # TYPE {name} gauge\n{name} {bytes}\n"
    )
}

/// Renders the report cache's byte accounting ([`crate::cache::CacheStats`]).
pub fn render_cache_stats(stats: &crate::cache::CacheStats) -> String {
    let mut out = String::new();
    let mut metric = |name: &str, kind: &str, help: &str, value: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
        ));
    };
    metric(
        "hypdb_report_cache_entries",
        "gauge",
        "resident report-cache entries",
        stats.entries as u64,
    );
    metric(
        "hypdb_report_cache_resident_bytes",
        "gauge",
        "bytes pinned by resident report-cache entries",
        stats.resident_bytes as u64,
    );
    metric(
        "hypdb_report_cache_evictions_total",
        "counter",
        "report-cache entries evicted by the byte budget",
        stats.evictions,
    );
    metric(
        "hypdb_report_cache_evicted_bytes_total",
        "counter",
        "bytes reclaimed by report-cache eviction",
        stats.evicted_bytes,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_and_cache_renders_are_prometheus_shaped() {
        let stats = hypdb_core::OracleStats {
            batched_statements: 12,
            groups_planned: 3,
            table_scans: 2,
            scans_direct: 2,
            marginalised_from_superset: 7,
            lattice_intermediates: 1,
            speculative_skipped: 4,
            ..Default::default()
        };
        let text = render_oracle_stats(&stats);
        assert!(text.contains("\nhypdb_oracle_batched_statements_total 12\n"));
        assert!(text.contains("\nhypdb_oracle_groups_planned_total 3\n"));
        assert!(text.contains("\nhypdb_oracle_table_scans_total 2\n"));
        assert!(text.contains("\nhypdb_oracle_scans_direct_total 2\n"));
        assert!(text.contains("\nhypdb_oracle_marginalised_from_superset_total 7\n"));
        assert!(text.contains("\nhypdb_oracle_lattice_intermediates_total 1\n"));
        assert!(text.contains("\nhypdb_oracle_speculative_skipped_total 4\n"));

        let text = render_oracle_cache_bytes(1536);
        assert!(text.contains("# TYPE hypdb_oracle_cache_bytes gauge"));
        assert!(text.contains("\nhypdb_oracle_cache_bytes 1536\n"));

        let cs = crate::cache::CacheStats {
            entries: 2,
            resident_bytes: 4096,
            evictions: 5,
            evicted_bytes: 999,
        };
        let text = render_cache_stats(&cs);
        assert!(text.contains("\nhypdb_report_cache_resident_bytes 4096\n"));
        assert!(text.contains("\nhypdb_report_cache_evictions_total 5\n"));
        assert!(text.contains("\nhypdb_report_cache_evicted_bytes_total 999\n"));
        assert!(text.contains("# TYPE hypdb_report_cache_entries gauge"));
    }

    #[test]
    fn counters_accumulate() {
        let m = Metrics::default();
        m.request();
        m.request();
        m.analyze();
        m.cache_hit();
        m.cache_miss();
        m.rejected();
        m.client_error();
        m.set_queue_depth(3);
        let s = m.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.analyze, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.client_errors, 1);
        assert_eq!(s.queue_depth, 3);
    }

    #[test]
    fn in_flight_guard_is_balanced() {
        let m = Metrics::default();
        {
            let _a = m.enter();
            let _b = m.enter();
            assert_eq!(m.snapshot().in_flight, 2);
        }
        assert_eq!(m.snapshot().in_flight, 0);
    }

    #[test]
    fn render_is_prometheus_shaped() {
        let m = Metrics::default();
        m.cache_hit();
        let text = m.snapshot().render();
        assert!(text.contains("# TYPE hypdb_report_cache_hits_total counter"));
        assert!(text.contains("\nhypdb_report_cache_hits_total 1\n"));
        assert!(text.contains("# TYPE hypdb_in_flight gauge"));
    }
}
