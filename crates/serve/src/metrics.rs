//! Server metrics: lock-free counters and the `/metrics` text format.
//!
//! Counters are relaxed atomics — statistics, not synchronisation —
//! rendered in the Prometheus text exposition format so the endpoint
//! can be scraped directly. The snapshot form is also what the test
//! suite asserts cache-consistency against.

use hypdb_obs::{hist, Histogram, RollingWindow};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Lock-free counter block shared by acceptor and workers.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: AtomicU64,
    analyze: AtomicU64,
    detect: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    rejected: AtomicU64,
    client_errors: AtomicU64,
    in_flight: AtomicU64,
    queue_depth: AtomicU64,
    analyze_duration: Histogram,
    detect_duration: Histogram,
    other_duration: Histogram,
    queue_wait: Histogram,
    /// `hypdb_requests_total{endpoint,status}` — sorted so the
    /// exposition renders deterministically. Brief mutex: one entry
    /// bump per finished request.
    statuses: Mutex<BTreeMap<(&'static str, u16), u64>>,
}

/// Which `hypdb_request_duration_seconds` series a request lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /analyze`.
    Analyze,
    /// `POST /detect`.
    Detect,
    /// Everything else (`/metrics`, `/healthz`, `/datasets`, errors).
    Other,
}

impl Endpoint {
    /// The endpoint a request path routes to.
    pub fn of_path(path: &str) -> Endpoint {
        match path {
            "/analyze" => Endpoint::Analyze,
            "/detect" => Endpoint::Detect,
            _ => Endpoint::Other,
        }
    }

    /// The `endpoint` label value in `hypdb_requests_total`.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Analyze => "analyze",
            Endpoint::Detect => "detect",
            Endpoint::Other => "other",
        }
    }
}

/// A point-in-time copy of every counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// HTTP requests parsed (any endpoint, any outcome).
    pub requests: u64,
    /// `POST /analyze` requests routed.
    pub analyze: u64,
    /// `POST /detect` requests routed.
    pub detect: u64,
    /// Responses served from the report cache.
    pub cache_hits: u64,
    /// Reports computed and inserted into the cache.
    pub cache_misses: u64,
    /// Connections refused with 503 (admission queue full).
    pub rejected: u64,
    /// 4xx responses (bad framing, bad request JSON, unknown dataset).
    pub client_errors: u64,
    /// Connections currently being handled by workers.
    pub in_flight: u64,
    /// Connections waiting in the admission queue.
    pub queue_depth: u64,
}

fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

impl Metrics {
    /// Counts a parsed HTTP request.
    pub fn request(&self) {
        bump(&self.requests);
    }

    /// Counts a routed `/analyze` request.
    pub fn analyze(&self) {
        bump(&self.analyze);
    }

    /// Counts a routed `/detect` request.
    pub fn detect(&self) {
        bump(&self.detect);
    }

    /// Counts a cache hit.
    pub fn cache_hit(&self) {
        bump(&self.cache_hits);
    }

    /// Counts a cache miss (a freshly computed report).
    pub fn cache_miss(&self) {
        bump(&self.cache_misses);
    }

    /// Counts a 503 admission rejection.
    pub fn rejected(&self) {
        bump(&self.rejected);
    }

    /// Counts a 4xx response.
    pub fn client_error(&self) {
        bump(&self.client_errors);
    }

    /// Marks a connection entering a worker; the guard decrements on
    /// drop (panic-safe, so `in_flight` can never leak upward).
    pub fn enter(&self) -> InFlightGuard<'_> {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        InFlightGuard { metrics: self }
    }

    /// Updates the queue-depth gauge.
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth as u64, Ordering::Relaxed);
    }

    /// Records one request's wall-clock duration under its endpoint's
    /// `hypdb_request_duration_seconds` series.
    pub fn observe_request(&self, endpoint: Endpoint, seconds: f64) {
        match endpoint {
            Endpoint::Analyze => self.analyze_duration.observe(seconds),
            Endpoint::Detect => self.detect_duration.observe(seconds),
            Endpoint::Other => self.other_duration.observe(seconds),
        }
    }

    /// Records how long a connection sat in the admission queue before
    /// a worker picked it up — or, on the overflow path, before it was
    /// rejected.
    pub fn observe_queue_wait(&self, seconds: f64) {
        self.queue_wait.observe(seconds);
    }

    /// Counts one finished request in the
    /// `hypdb_requests_total{endpoint,status}` family. `endpoint` is an
    /// [`Endpoint::label`] value, or `"rejected"` for admission 503s.
    pub fn observe_status(&self, endpoint: &'static str, status: u16) {
        let mut map = self
            .statuses
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *map.entry((endpoint, status)).or_insert(0) += 1;
    }

    /// Renders the labelled `hypdb_requests_total{endpoint,status}`
    /// counter family (one family header even when no sample exists
    /// yet, so scrapes always see the declaration).
    pub fn render_requests_total(&self) -> String {
        let name = "hypdb_requests_total";
        let mut out = format!(
            "# HELP {name} requests served, by endpoint and status\n# TYPE {name} counter\n"
        );
        let map = self
            .statuses
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        for (&(endpoint, status), &count) in map.iter() {
            out.push_str(&format!(
                "{name}{{endpoint=\"{endpoint}\",status=\"{status}\"}} {count}\n"
            ));
        }
        out
    }

    /// Renders every histogram family this process maintains: the
    /// server's request-duration and queue-wait ladders plus the
    /// process-wide pipeline histograms (`hypdb-obs` statics fed by the
    /// stats and oracle layers).
    pub fn render_histograms(&self) -> String {
        let mut out = String::new();
        hist::render(
            &mut out,
            "hypdb_request_duration_seconds",
            "request wall-clock seconds per endpoint",
            &[
                ("endpoint=\"analyze\"", &self.analyze_duration),
                ("endpoint=\"detect\"", &self.detect_duration),
                ("endpoint=\"other\"", &self.other_duration),
            ],
        );
        hist::render(
            &mut out,
            "hypdb_queue_wait_seconds",
            "seconds a connection waited in the admission queue",
            &[("", &self.queue_wait)],
        );
        hist::render(
            &mut out,
            "hypdb_mit_settle_seconds",
            "permutation-test settle seconds per batched statement",
            &[("", &hypdb_obs::MIT_SETTLE)],
        );
        hist::render(
            &mut out,
            "hypdb_contingency_build_seconds",
            "contingency-table build seconds (scans and marginalisations)",
            &[("", &hypdb_obs::CONTINGENCY_BUILD)],
        );
        out
    }

    /// Copies every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            analyze: self.analyze.load(Ordering::Relaxed),
            detect: self.detect.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            client_errors: self.client_errors.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
        }
    }
}

/// Decrements `in_flight` when a worker finishes a connection.
pub struct InFlightGuard<'a> {
    metrics: &'a Metrics,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

impl MetricsSnapshot {
    /// Renders the Prometheus text exposition format (`/metrics`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut metric = |name: &str, kind: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
            ));
        };
        // `hypdb_requests_total` is rendered as a labelled
        // {endpoint,status} family by `Metrics::render_requests_total`
        // (the snapshot keeps the aggregate `requests` field for
        // programmatic consumers); rendering an unlabelled sample here
        // too would declare the family twice.
        metric(
            "hypdb_parsed_requests_total",
            "counter",
            "HTTP requests parsed",
            self.requests,
        );
        metric(
            "hypdb_analyze_requests_total",
            "counter",
            "POST /analyze requests",
            self.analyze,
        );
        metric(
            "hypdb_detect_requests_total",
            "counter",
            "POST /detect requests",
            self.detect,
        );
        metric(
            "hypdb_report_cache_hits_total",
            "counter",
            "responses served from the report cache",
            self.cache_hits,
        );
        metric(
            "hypdb_report_cache_misses_total",
            "counter",
            "reports computed on a cache miss",
            self.cache_misses,
        );
        metric(
            "hypdb_rejected_total",
            "counter",
            "connections refused with 503 (queue full)",
            self.rejected,
        );
        metric(
            "hypdb_client_errors_total",
            "counter",
            "4xx responses",
            self.client_errors,
        );
        // Gauge names follow the Prometheus conventions: a gauge is
        // named for the thing measured (`…_requests`, `…_connections`),
        // never left as a bare verb phrase.
        metric(
            "hypdb_in_flight_requests",
            "gauge",
            "connections currently being handled",
            self.in_flight,
        );
        metric(
            "hypdb_queued_connections",
            "gauge",
            "connections waiting for a worker",
            self.queue_depth,
        );
        out
    }
}

/// One coherent view of the oracle side of `/metrics`: the aggregated
/// work counters and the resident contingency-table bytes, taken
/// together (the server reads both under a single registry lock, the
/// CLI from its single cache) so the stderr footer and the exposition
/// can never disagree about the same instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleSnapshot {
    /// Aggregated work counters.
    pub stats: hypdb_core::OracleStats,
    /// Bytes resident in contingency caches.
    pub cache_bytes: u64,
}

impl OracleSnapshot {
    /// Snapshot of one shared cache (the CLI's single-oracle case).
    pub fn from_cache(cache: &hypdb_core::OracleCache) -> OracleSnapshot {
        OracleSnapshot {
            stats: cache.stats(),
            cache_bytes: cache.cache_bytes(),
        }
    }

    /// The `/metrics` rendering: work counters plus the byte gauge.
    pub fn render(&self) -> String {
        let mut out = render_oracle_stats(&self.stats);
        out.push_str(&render_oracle_cache_bytes(self.cache_bytes));
        out
    }

    /// The human-readable stderr footer the CLI prints after a run —
    /// derived from the same snapshot as the exposition above.
    pub fn footer(&self) -> String {
        let s = &self.stats;
        format!(
            "oracle: {} tests, {} scans, {} cache hits, {} marginalizations, \
             {} entropies ({} cached); planner: {} statements in {} groups, \
             {} direct scans, {} from superset, {} lattice intermediates, \
             {} speculative skips; mit: {} permutations, {} stage-1 settled, \
             {} escalated; {} bytes resident",
            s.tests,
            s.table_scans,
            s.count_cache_hits,
            s.marginalizations,
            s.entropy_misses,
            s.entropy_hits,
            s.batched_statements,
            s.groups_planned,
            s.scans_direct,
            s.marginalised_from_superset,
            s.lattice_intermediates,
            s.speculative_skipped,
            s.mit_permutations,
            s.mit_stage1_settled,
            s.mit_escalated,
            self.cache_bytes,
        )
    }
}

/// Renders the aggregated oracle work counters ([`hypdb_core::OracleStats`]
/// summed over every shared oracle-cache slot) in the Prometheus text
/// format — scans, cache hits, marginalisations, entropies, and the
/// multi-query planner's batching counters.
pub fn render_oracle_stats(stats: &hypdb_core::OracleStats) -> String {
    let mut out = String::new();
    let mut metric = |name: &str, help: &str, value: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
        ));
    };
    metric(
        "hypdb_oracle_tests_total",
        "independence tests performed",
        stats.tests,
    );
    metric(
        "hypdb_oracle_table_scans_total",
        "full row scans to build a contingency table",
        stats.table_scans,
    );
    metric(
        "hypdb_oracle_count_cache_hits_total",
        "contingency tables served from the materialisation cache",
        stats.count_cache_hits,
    );
    metric(
        "hypdb_oracle_marginalizations_total",
        "contingency tables derived from a cached superset",
        stats.marginalizations,
    );
    metric(
        "hypdb_oracle_entropy_hits_total",
        "entropies served from the entropy cache",
        stats.entropy_hits,
    );
    metric(
        "hypdb_oracle_entropy_misses_total",
        "entropies computed",
        stats.entropy_misses,
    );
    metric(
        "hypdb_oracle_batched_statements_total",
        "independence statements submitted through the batch planner",
        stats.batched_statements,
    );
    metric(
        "hypdb_oracle_groups_planned_total",
        "statement groups (shared conditioning sets) planned",
        stats.groups_planned,
    );
    metric(
        "hypdb_oracle_scans_direct_total",
        "planner decisions to build a table by direct segment scan",
        stats.scans_direct,
    );
    metric(
        "hypdb_oracle_marginalised_from_superset_total",
        "planner decisions to derive a table from a cached superset",
        stats.marginalised_from_superset,
    );
    metric(
        "hypdb_oracle_lattice_intermediates_total",
        "intermediate marginals materialised by lattice descent",
        stats.lattice_intermediates,
    );
    metric(
        "hypdb_oracle_speculative_skipped_total",
        "round statements skipped by speculation pruning",
        stats.speculative_skipped,
    );
    metric(
        "hypdb_mit_permutations_total",
        "permutations evaluated across settled MIT jobs",
        stats.mit_permutations,
    );
    metric(
        "hypdb_mit_stage1_settled_total",
        "MIT jobs settled at a screening checkpoint",
        stats.mit_stage1_settled,
    );
    metric(
        "hypdb_mit_escalated_total",
        "screened MIT jobs escalated to their full budget",
        stats.mit_escalated,
    );
    out
}

/// Renders the resident contingency-table footprint of every shared
/// oracle-cache slot as a gauge (bytes rise as tables materialise and
/// fall when a dataset slot is evicted).
pub fn render_oracle_cache_bytes(bytes: u64) -> String {
    let name = "hypdb_oracle_cache_bytes";
    format!(
        "# HELP {name} bytes resident in shared oracle contingency caches\n\
         # TYPE {name} gauge\n{name} {bytes}\n"
    )
}

/// Renders the `hypdb_build_info` gauge (constant 1 with build
/// metadata labels — the Prometheus convention for exposing versions)
/// and the `hypdb_uptime_seconds` gauge.
pub fn render_build_info(uptime_seconds: f64) -> String {
    let version = env!("CARGO_PKG_VERSION");
    let journal_schema = hypdb_obs::journal::SCHEMA;
    format!(
        "# HELP hypdb_build_info build metadata (value is constant 1)\n\
         # TYPE hypdb_build_info gauge\n\
         hypdb_build_info{{version=\"{version}\",journal_schema=\"{journal_schema}\"}} 1\n\
         # HELP hypdb_uptime_seconds seconds since the server started\n\
         # TYPE hypdb_uptime_seconds gauge\n\
         hypdb_uptime_seconds {uptime_seconds:.3}\n"
    )
}

/// Renders the process-wide `hypdb_journal_dropped_total` counter —
/// journal lines dropped because the writer's bounded channel was full
/// (the flight recorder never blocks the request path).
pub fn render_journal_dropped() -> String {
    let name = "hypdb_journal_dropped_total";
    format!(
        "# HELP {name} journal records dropped by the bounded writer channel\n\
         # TYPE {name} counter\n{name} {}\n",
        hypdb_obs::journal::dropped_total()
    )
}

/// Renders the rolling-window gauge families
/// (`hypdb_window_requests` / `_errors` / `_latency_avg_seconds` /
/// `_latency_max_seconds`) over 1m and 5m horizons. `series` pairs a
/// label block (`endpoint="analyze"`, `dataset="adult"`) with its
/// window; each family is declared once with every sample under it.
pub fn render_windows(series: &[(String, &RollingWindow)]) -> String {
    const HORIZONS: [(&str, u64); 2] = [("1m", 60), ("5m", 300)];
    let summaries: Vec<(&str, &str, hypdb_obs::WindowSummary)> = series
        .iter()
        .flat_map(|(labels, window)| {
            HORIZONS
                .iter()
                .map(move |&(tag, secs)| (labels.as_str(), tag, window.summary(secs)))
        })
        .collect();
    let mut out = String::new();
    let mut family =
        |name: &str, help: &str, value: &dyn Fn(&hypdb_obs::WindowSummary) -> String| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
            for (labels, horizon, summary) in &summaries {
                out.push_str(&format!(
                    "{name}{{{labels},window=\"{horizon}\"}} {}\n",
                    value(summary)
                ));
            }
        };
    family(
        "hypdb_window_requests",
        "requests finished inside the rolling window",
        &|s| s.count.to_string(),
    );
    family(
        "hypdb_window_errors",
        "error (4xx/5xx) responses inside the rolling window",
        &|s| s.errors.to_string(),
    );
    family(
        "hypdb_window_latency_avg_seconds",
        "mean request latency inside the rolling window",
        &|s| format!("{:.6}", s.avg_seconds),
    );
    family(
        "hypdb_window_latency_max_seconds",
        "maximum request latency inside the rolling window",
        &|s| format!("{:.6}", s.max_seconds),
    );
    out
}

/// Renders the report cache's byte accounting ([`crate::cache::CacheStats`]).
pub fn render_cache_stats(stats: &crate::cache::CacheStats) -> String {
    let mut out = String::new();
    let mut metric = |name: &str, kind: &str, help: &str, value: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
        ));
    };
    metric(
        "hypdb_report_cache_entries",
        "gauge",
        "resident report-cache entries",
        stats.entries as u64,
    );
    metric(
        "hypdb_report_cache_resident_bytes",
        "gauge",
        "bytes pinned by resident report-cache entries",
        stats.resident_bytes as u64,
    );
    metric(
        "hypdb_report_cache_evictions_total",
        "counter",
        "report-cache entries evicted by the byte budget",
        stats.evictions,
    );
    metric(
        "hypdb_report_cache_evicted_bytes_total",
        "counter",
        "bytes reclaimed by report-cache eviction",
        stats.evicted_bytes,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_and_cache_renders_are_prometheus_shaped() {
        let stats = hypdb_core::OracleStats {
            batched_statements: 12,
            groups_planned: 3,
            table_scans: 2,
            scans_direct: 2,
            marginalised_from_superset: 7,
            lattice_intermediates: 1,
            speculative_skipped: 4,
            mit_permutations: 4096,
            mit_stage1_settled: 11,
            mit_escalated: 2,
            ..Default::default()
        };
        let text = render_oracle_stats(&stats);
        assert!(text.contains("\nhypdb_oracle_batched_statements_total 12\n"));
        assert!(text.contains("\nhypdb_oracle_groups_planned_total 3\n"));
        assert!(text.contains("\nhypdb_oracle_table_scans_total 2\n"));
        assert!(text.contains("\nhypdb_oracle_scans_direct_total 2\n"));
        assert!(text.contains("\nhypdb_oracle_marginalised_from_superset_total 7\n"));
        assert!(text.contains("\nhypdb_oracle_lattice_intermediates_total 1\n"));
        assert!(text.contains("\nhypdb_oracle_speculative_skipped_total 4\n"));
        assert!(text.contains("\nhypdb_mit_permutations_total 4096\n"));
        assert!(text.contains("\nhypdb_mit_stage1_settled_total 11\n"));
        assert!(text.contains("\nhypdb_mit_escalated_total 2\n"));

        let text = render_oracle_cache_bytes(1536);
        assert!(text.contains("# TYPE hypdb_oracle_cache_bytes gauge"));
        assert!(text.contains("\nhypdb_oracle_cache_bytes 1536\n"));

        let cs = crate::cache::CacheStats {
            entries: 2,
            resident_bytes: 4096,
            evictions: 5,
            evicted_bytes: 999,
        };
        let text = render_cache_stats(&cs);
        assert!(text.contains("\nhypdb_report_cache_resident_bytes 4096\n"));
        assert!(text.contains("\nhypdb_report_cache_evictions_total 5\n"));
        assert!(text.contains("\nhypdb_report_cache_evicted_bytes_total 999\n"));
        assert!(text.contains("# TYPE hypdb_report_cache_entries gauge"));
    }

    #[test]
    fn counters_accumulate() {
        let m = Metrics::default();
        m.request();
        m.request();
        m.analyze();
        m.cache_hit();
        m.cache_miss();
        m.rejected();
        m.client_error();
        m.set_queue_depth(3);
        let s = m.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.analyze, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.client_errors, 1);
        assert_eq!(s.queue_depth, 3);
    }

    #[test]
    fn in_flight_guard_is_balanced() {
        let m = Metrics::default();
        {
            let _a = m.enter();
            let _b = m.enter();
            assert_eq!(m.snapshot().in_flight, 2);
        }
        assert_eq!(m.snapshot().in_flight, 0);
    }

    #[test]
    fn render_is_prometheus_shaped() {
        let m = Metrics::default();
        m.cache_hit();
        let text = m.snapshot().render();
        assert!(text.contains("# TYPE hypdb_report_cache_hits_total counter"));
        assert!(text.contains("\nhypdb_report_cache_hits_total 1\n"));
        assert!(text.contains("# TYPE hypdb_in_flight_requests gauge"));
        assert!(text.contains("# TYPE hypdb_queued_connections gauge"));
        // The pre-rename spellings must be gone: `hypdb_in_flight` was
        // not named for what it measures, `hypdb_queue_depth` read as a
        // depth-in-bytes counter to convention-aware tooling.
        assert!(!text.contains("hypdb_in_flight \n") && !text.contains("hypdb_in_flight 0"));
        assert!(!text.contains("hypdb_queue_depth"));
    }

    /// Line-by-line Prometheus text-exposition validator: HELP/TYPE
    /// pairing per family, no duplicate families or samples, sample
    /// names matching the declared family (including `_bucket`/`_sum`/
    /// `_count` for histograms), numeric values, and per-series bucket
    /// ladders that are `le`-ascending, cumulative, and closed by a
    /// `+Inf` bucket equal to `_count`.
    fn check_exposition(text: &str) -> Result<(), String> {
        use std::collections::{HashMap, HashSet};
        let mut declared: HashMap<String, String> = HashMap::new();
        let mut pending_help: Option<String> = None;
        let mut current: Option<String> = None;
        let mut samples_seen: HashSet<String> = HashSet::new();
        #[derive(Default)]
        struct Series {
            last_le: Option<f64>,
            last_cum: Option<u64>,
            inf: Option<u64>,
        }
        let mut series: HashMap<(String, String), Series> = HashMap::new();
        let mut counts: Vec<((String, String), u64)> = Vec::new();

        for (no, line) in text.lines().enumerate() {
            let fail = |msg: &str| Err(format!("line {}: {msg}: `{line}`", no + 1));
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let Some((name, help)) = rest.split_once(' ') else {
                    return fail("HELP without text");
                };
                if help.trim().is_empty() {
                    return fail("empty HELP text");
                }
                if declared.contains_key(name) {
                    return fail("duplicate metric family");
                }
                if pending_help.is_some() {
                    return fail("HELP not followed by TYPE");
                }
                pending_help = Some(name.to_string());
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let Some((name, kind)) = rest.split_once(' ') else {
                    return fail("TYPE without kind");
                };
                if pending_help.as_deref() != Some(name) {
                    return fail("TYPE without a matching HELP directly above");
                }
                if !matches!(kind, "counter" | "gauge" | "histogram") {
                    return fail("unknown metric kind");
                }
                declared.insert(name.to_string(), kind.to_string());
                current = Some(name.to_string());
                pending_help = None;
                continue;
            }
            if line.starts_with('#') {
                return fail("unknown comment line");
            }
            // A sample: `name[{labels}] value`.
            let Some((metric, value)) = line.rsplit_once(' ') else {
                return fail("sample without a value");
            };
            if value.parse::<f64>().is_err() {
                return fail("sample value is not a number");
            }
            if !samples_seen.insert(metric.to_string()) {
                return fail("duplicate sample");
            }
            let (name, labels) = match metric.split_once('{') {
                Some((n, rest)) => match rest.strip_suffix('}') {
                    Some(l) => (n, l),
                    None => return fail("unclosed label block"),
                },
                None => (metric, ""),
            };
            let Some(family) = current.clone() else {
                return fail("sample before any TYPE declaration");
            };
            match declared[&family].as_str() {
                "histogram" => {
                    let strip_le = |labels: &str| -> (Option<String>, String) {
                        let mut le = None;
                        let rest: Vec<&str> = labels
                            .split(',')
                            .filter(|part| match part.strip_prefix("le=\"") {
                                Some(v) => {
                                    le = v.strip_suffix('"').map(str::to_string);
                                    false
                                }
                                None => true,
                            })
                            .collect();
                        (le, rest.join(","))
                    };
                    if name == format!("{family}_bucket") {
                        let (le, key) = strip_le(labels);
                        let Some(le) = le else {
                            return fail("bucket sample without an le label");
                        };
                        let cum: u64 = match value.parse() {
                            Ok(c) => c,
                            Err(_) => return fail("bucket count is not an integer"),
                        };
                        let s = series.entry((family.clone(), key)).or_default();
                        if le == "+Inf" {
                            if s.inf.is_some() {
                                return fail("duplicate +Inf bucket");
                            }
                            if s.last_cum.is_some_and(|prev| cum < prev) {
                                return fail("+Inf bucket below the ladder");
                            }
                            s.inf = Some(cum);
                        } else {
                            let Ok(bound) = le.parse::<f64>() else {
                                return fail("unparsable le bound");
                            };
                            if s.inf.is_some() {
                                return fail("finite bucket after +Inf");
                            }
                            if s.last_le.is_some_and(|prev| bound <= prev) {
                                return fail("le bounds are not ascending");
                            }
                            if s.last_cum.is_some_and(|prev| cum < prev) {
                                return fail("bucket counts are not cumulative");
                            }
                            s.last_le = Some(bound);
                            s.last_cum = Some(cum);
                        }
                    } else if name == format!("{family}_sum") {
                        // Any finite float is fine; already checked.
                    } else if name == format!("{family}_count") {
                        let Ok(count) = value.parse::<u64>() else {
                            return fail("histogram count is not an integer");
                        };
                        counts.push(((family.clone(), labels.to_string()), count));
                    } else {
                        return fail("sample name does not match the histogram family");
                    }
                }
                _ => {
                    if name != family {
                        return fail("sample name does not match the declared family");
                    }
                }
            }
        }
        if pending_help.is_some() {
            return Err("trailing HELP without TYPE".into());
        }
        for (key, count) in counts {
            match series.get(&key) {
                Some(s) if s.inf == Some(count) => {}
                Some(s) => {
                    return Err(format!(
                        "series {key:?}: +Inf bucket {:?} != count {count}",
                        s.inf
                    ))
                }
                None => return Err(format!("series {key:?}: count without buckets")),
            }
        }
        for (key, s) in &series {
            if s.inf.is_none() {
                return Err(format!("series {key:?}: no +Inf bucket"));
            }
        }
        Ok(())
    }

    #[test]
    fn full_exposition_is_well_formed() {
        let m = Metrics::default();
        m.request();
        m.analyze();
        m.cache_miss();
        m.observe_request(Endpoint::Analyze, 0.012);
        m.observe_request(Endpoint::Other, 0.0002);
        m.observe_queue_wait(0.0007);
        m.observe_status(Endpoint::Analyze.label(), 200);
        m.observe_status(Endpoint::Analyze.label(), 400);
        m.observe_status("rejected", 503);
        let oracle = OracleSnapshot {
            stats: hypdb_core::OracleStats {
                tests: 5,
                batched_statements: 12,
                ..Default::default()
            },
            cache_bytes: 2048,
        };
        let cache = crate::cache::CacheStats {
            entries: 1,
            resident_bytes: 512,
            evictions: 0,
            evicted_bytes: 0,
        };
        let analyze_window = RollingWindow::new();
        analyze_window.observe(0.012, false);
        analyze_window.observe(0.050, true);
        let dataset_window = RollingWindow::new();
        dataset_window.observe(0.012, false);
        // Assemble the exposition exactly as the `/metrics` route does.
        let mut text = m.snapshot().render();
        text.push_str(&m.render_requests_total());
        text.push_str(&render_build_info(12.5));
        text.push_str(&render_journal_dropped());
        text.push_str(&render_cache_stats(&cache));
        text.push_str(&oracle.render());
        text.push_str(&m.render_histograms());
        text.push_str(&render_windows(&[
            ("endpoint=\"analyze\"".into(), &analyze_window),
            ("dataset=\"adult\"".into(), &dataset_window),
        ]));
        check_exposition(&text).unwrap();
        assert!(text
            .contains("hypdb_request_duration_seconds_bucket{endpoint=\"analyze\",le=\"0.05\"} 1"));
        assert!(text.contains("hypdb_queue_wait_seconds_count 1"));
        assert!(text.contains("hypdb_requests_total{endpoint=\"analyze\",status=\"200\"} 1\n"));
        assert!(text.contains("hypdb_requests_total{endpoint=\"analyze\",status=\"400\"} 1\n"));
        assert!(text.contains("hypdb_requests_total{endpoint=\"rejected\",status=\"503\"} 1\n"));
        assert!(text.contains("hypdb_build_info{version=\""));
        assert!(text.contains("journal_schema=\"hypdb-journal/v1\"} 1\n"));
        assert!(text.contains("\nhypdb_uptime_seconds 12.500\n"));
        assert!(text.contains("# TYPE hypdb_journal_dropped_total counter"));
        assert!(text.contains("hypdb_window_requests{endpoint=\"analyze\",window=\"1m\"} 2\n"));
        assert!(text.contains("hypdb_window_errors{endpoint=\"analyze\",window=\"5m\"} 1\n"));
        assert!(text.contains("hypdb_window_requests{dataset=\"adult\",window=\"1m\"} 1\n"));
        assert!(text.contains(
            "hypdb_window_latency_max_seconds{endpoint=\"analyze\",window=\"1m\"} 0.050000\n"
        ));
    }

    #[test]
    fn requests_total_family_renders_sorted_and_headers_only_when_empty() {
        let m = Metrics::default();
        let empty = m.render_requests_total();
        assert_eq!(
            empty,
            "# HELP hypdb_requests_total requests served, by endpoint and status\n\
             # TYPE hypdb_requests_total counter\n"
        );
        m.observe_status("detect", 200);
        m.observe_status("analyze", 404);
        m.observe_status("analyze", 200);
        m.observe_status("analyze", 200);
        let text = m.render_requests_total();
        let samples: Vec<&str> = text.lines().skip(2).collect();
        assert_eq!(
            samples,
            vec![
                "hypdb_requests_total{endpoint=\"analyze\",status=\"200\"} 2",
                "hypdb_requests_total{endpoint=\"analyze\",status=\"404\"} 1",
                "hypdb_requests_total{endpoint=\"detect\",status=\"200\"} 1",
            ]
        );
    }

    #[test]
    fn malformed_expositions_are_rejected() {
        // Duplicate family.
        let dup = "# HELP a x\n# TYPE a counter\na 1\n# HELP a x\n# TYPE a counter\na 2\n";
        assert!(check_exposition(dup).is_err());
        // Sample before any TYPE.
        assert!(check_exposition("a 1\n").is_err());
        // Non-numeric value.
        assert!(check_exposition("# HELP a x\n# TYPE a counter\na one\n").is_err());
        // Sample name drifting from the declared family.
        assert!(check_exposition("# HELP a x\n# TYPE a counter\nb 1\n").is_err());
        // Duplicate sample.
        assert!(check_exposition("# HELP a x\n# TYPE a gauge\na 1\na 2\n").is_err());
        // Histogram with a non-cumulative ladder.
        let bad = "# HELP h x\n# TYPE h histogram\n\
                   h_bucket{le=\"0.1\"} 5\nh_bucket{le=\"1.0\"} 3\n\
                   h_bucket{le=\"+Inf\"} 5\nh_sum 1.0\nh_count 5\n";
        assert!(check_exposition(bad).is_err());
        // Histogram whose +Inf bucket disagrees with its count.
        let bad = "# HELP h x\n# TYPE h histogram\n\
                   h_bucket{le=\"0.1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.1\nh_count 3\n";
        assert!(check_exposition(bad).is_err());
        // Histogram missing its +Inf closing bucket.
        let bad = "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"0.1\"} 2\nh_sum 0.1\n";
        assert!(check_exposition(bad).is_err());
    }
}
