//! Table 1: end-to-end runtimes of detection, explanation and
//! resolution on the five evaluation datasets.

use crate::report::{f3, MdTable};
use crate::Scale;
use hypdb_core::{HypDb, Query};
use hypdb_datasets as ds;
use hypdb_table::Table;

struct Case {
    name: &'static str,
    table: Table,
    sql: String,
}

fn cases(scale: Scale) -> Vec<Case> {
    let staples_rows = scale.pick(200_000, 988_871);
    vec![
        Case {
            name: "AdultData",
            table: ds::adult_data(&ds::AdultConfig::default()),
            sql: "SELECT Gender, avg(Income) FROM AdultData GROUP BY Gender".into(),
        },
        Case {
            name: "StaplesData",
            table: ds::staples_data(&ds::StaplesConfig {
                rows: staples_rows,
                ..ds::StaplesConfig::default()
            }),
            sql: "SELECT Income, avg(Price) FROM StaplesData GROUP BY Income".into(),
        },
        Case {
            name: "BerkeleyData",
            table: ds::berkeley_data(),
            sql: "SELECT Gender, avg(Accepted) FROM BerkeleyData GROUP BY Gender".into(),
        },
        Case {
            name: "CancerData",
            table: ds::cancer_data(2_000, 17),
            sql: "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData GROUP BY Lung_Cancer"
                .into(),
        },
        Case {
            name: "FlightData",
            table: ds::flight_data(&ds::FlightConfig::default()),
            sql: "SELECT Carrier, avg(Delayed) FROM FlightData \
                  WHERE Carrier IN ('AA','UA') AND Airport IN ('COS','MFE','MTJ','ROC') \
                  GROUP BY Carrier"
                .into(),
        },
    ]
}

/// Runs the experiment and prints the table.
pub fn run(scale: Scale) {
    crate::report::section("Table 1 — runtimes (seconds) for detection / explanation / resolution");
    let mut out = MdTable::new(["dataset", "columns", "rows", "Det.", "Exp.", "Res."]);
    for case in cases(scale) {
        let query = Query::from_sql(&case.sql, &case.table).expect("query");
        let report = HypDb::new(&case.table).analyze(&query).expect("analysis");
        out.row([
            case.name.to_string(),
            case.table.nattrs().to_string(),
            case.table.nrows().to_string(),
            f3(report.timings.detection),
            f3(report.timings.explanation),
            f3(report.timings.resolution),
        ]);
    }
    out.print();
    println!(
        "\n(paper, for shape: Adult 65/<1/<1, Staples 5/<1/<1, Berkeley 2/<1/<1, \
         Cancer <1/<1/<1, Flight 20/<1/<1 — detection dominates, explanation \
         and resolution are interactive)"
    );
}
