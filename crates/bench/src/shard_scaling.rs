//! PR-3 shard-scaling experiment: the storage-layer kernels and the
//! end-to-end pipeline on monolithic vs sharded storage, at 1 worker
//! and the default worker count.
//!
//! Prints a markdown table and writes `BENCH_pr3.json` so the perf
//! trajectory (started by `BENCH_pr2.json`) continues. The equivalence
//! layer guarantees every measured run produces byte-identical output;
//! only the wall clock may differ. Shard size 0 denotes the monolithic
//! baseline.

use crate::report::MdTable;
use crate::Scale;
use hypdb_core::{HypDb, Query};
use hypdb_datasets as ds;
use hypdb_store::{contingency, group_count, scan_filter, ShardedTable};
use hypdb_table::{AttrId, Predicate, Scan, Table};
use serde::Serialize;

/// One timed run of one kernel on one storage layout.
#[derive(Debug, Clone, Serialize)]
pub struct ShardRunRecord {
    /// Experiment name (`contingency_build`, `scan_filter`, …).
    pub experiment: String,
    /// Rows per shard (0 = monolithic baseline).
    pub shard_rows: usize,
    /// Worker count the run used.
    pub threads: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// The whole machine-readable report (`BENCH_pr3.json`).
#[derive(Debug, Clone, Serialize)]
pub struct ShardBenchReport {
    /// PR number this trajectory point belongs to.
    pub pr: u32,
    /// `std::thread::available_parallelism` on the runner.
    pub available_parallelism: usize,
    /// Worker counts measured.
    pub thread_counts: Vec<usize>,
    /// Shard sizes measured (0 = monolithic).
    pub shard_sizes: Vec<usize>,
    /// All timed runs.
    pub runs: Vec<ShardRunRecord>,
}

fn thread_counts() -> Vec<usize> {
    let default = hypdb_exec::global_threads();
    if default > 1 {
        vec![1, default]
    } else {
        vec![1, 2]
    }
}

/// Runs every kernel on one storage layout, appending records.
fn run_kernels<S: Scan>(
    shard_rows: usize,
    table: &S,
    query: &Query,
    pred: &Predicate,
    attrs: &[AttrId],
    counts: &[usize],
    runs: &mut Vec<ShardRunRecord>,
) {
    let n = table.nrows();
    for &t in counts {
        let (rows, secs) = crate::timed_at_threads(t, || scan_filter(table, pred));
        assert!(rows.len() <= n);
        runs.push(ShardRunRecord {
            experiment: "scan_filter".to_string(),
            shard_rows,
            threads: t,
            seconds: secs,
        });

        let (ct, secs) =
            crate::timed_at_threads(t, || contingency(table, &table.all_rows(), attrs));
        assert_eq!(ct.total() as usize, n);
        runs.push(ShardRunRecord {
            experiment: "contingency_build".to_string(),
            shard_rows,
            threads: t,
            seconds: secs,
        });

        let (groups, secs) =
            crate::timed_at_threads(t, || group_count(table, &table.all_rows(), &attrs[..2]));
        assert!(!groups.is_empty());
        runs.push(ShardRunRecord {
            experiment: "group_count".to_string(),
            shard_rows,
            threads: t,
            seconds: secs,
        });

        let (report, secs) =
            crate::timed_at_threads(t, || HypDb::new(table).analyze(query).expect("analysis"));
        assert!(!report.contexts.is_empty());
        runs.push(ShardRunRecord {
            experiment: "adult_pipeline".to_string(),
            shard_rows,
            threads: t,
            seconds: secs,
        });
    }
}

/// Runs the shard-scaling sweep, prints the table, writes
/// `BENCH_pr3.json`.
pub fn run(scale: Scale) {
    crate::report::section("PR-3 shard scaling — kernels & pipeline, monolithic vs sharded");
    let counts = thread_counts();
    let shard_sizes: Vec<usize> = vec![0, 4096, 65_536];
    let mut runs: Vec<ShardRunRecord> = Vec::new();

    let mono: Table = ds::adult_data(&ds::AdultConfig {
        rows: scale.pick(60_000, 500_000),
        seed: 7,
    });
    let attrs: Vec<AttrId> = mono.schema().attr_ids().take(4).collect();
    let pred = Predicate::eq(&mono, "Gender", "Female").expect("attr");
    let query = Query::from_sql(
        "SELECT Gender, avg(Income) FROM AdultData GROUP BY Gender",
        &mono,
    )
    .expect("query");

    for &shard_rows in &shard_sizes {
        if shard_rows == 0 {
            run_kernels(0, &mono, &query, &pred, &attrs, &counts, &mut runs);
        } else {
            let sharded = ShardedTable::from_table(&mono, shard_rows);
            run_kernels(
                shard_rows, &sharded, &query, &pred, &attrs, &counts, &mut runs,
            );
        }
    }

    let mut table = MdTable::new([
        "experiment",
        "shard_rows",
        "threads",
        "seconds",
        "vs monolithic",
    ]);
    for run in &runs {
        let base = runs
            .iter()
            .find(|r| {
                r.experiment == run.experiment && r.shard_rows == 0 && r.threads == run.threads
            })
            .map(|r| r.seconds)
            .unwrap_or(run.seconds);
        let rel = if run.seconds > 0.0 {
            base / run.seconds
        } else {
            1.0
        };
        table.row([
            run.experiment.clone(),
            if run.shard_rows == 0 {
                "mono".to_string()
            } else {
                run.shard_rows.to_string()
            },
            run.threads.to_string(),
            format!("{:.3}", run.seconds),
            format!("{rel:.2}x"),
        ]);
    }
    println!("{}", table.render());

    let report = ShardBenchReport {
        pr: 3,
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        thread_counts: counts,
        shard_sizes,
        runs,
    };
    let json = serde_json::to_string(&report).expect("serialize");
    let path = "BENCH_pr3.json";
    std::fs::write(path, &json).expect("write BENCH_pr3.json");
    println!("\n(wrote {path}; sharded runs must match the monolithic baseline bit-for-bit — only wall clock may differ)");
}
