//! Regenerates every table and figure of the paper's evaluation (§7).
//!
//! ```sh
//! cargo run --release -p hypdb-bench --bin experiments              # all
//! cargo run --release -p hypdb-bench --bin experiments -- table1 fig5a
//! HYPDB_SCALE=full cargo run --release -p hypdb-bench --bin experiments
//! ```

use hypdb_bench::{
    end_to_end, fig5a, obs, opts, quality, replay_load, scaling, serve_throughput, shard_scaling,
    table1, tests_perf, Scale,
};

const ALL: &[&str] = &[
    "table1",
    "end_to_end",
    "planner",
    "staged_mit",
    "obs_overhead",
    "replay_load",
    "fig5a",
    "fig5b",
    "fig5c",
    "fig5d",
    "fig6a",
    "fig6b",
    "fig6c",
    "fig6d",
    "fig8a",
    "fig8b",
    "scaling",
    "shard_scaling",
    "serve_throughput",
];

fn run_one(name: &str, scale: Scale) {
    match name {
        "table1" => table1::run(scale),
        "end_to_end" => end_to_end::run(scale),
        "planner" => end_to_end::run_planner(scale),
        "staged_mit" => end_to_end::run_staged(scale),
        "obs_overhead" => obs::run(scale),
        "replay_load" => replay_load::run(scale),
        "fig5a" => fig5a::run(scale),
        "fig5b" => quality::run_fig5b(scale),
        "fig5c" => quality::run_fig5c(scale),
        "fig5d" => quality::run_fig5d(scale),
        "fig6a" => quality::run_fig6a(scale),
        "fig6b" => tests_perf::run_fig6b(scale),
        "fig6c" => opts::run_fig6c(scale),
        "fig6d" => opts::run_fig6d(scale),
        "fig8a" => tests_perf::run_fig8a(scale),
        "fig8b" => opts::run_fig8b(scale),
        "scaling" => scaling::run(scale),
        "shard_scaling" => shard_scaling::run(scale),
        "serve_throughput" => serve_throughput::run(scale),
        other => {
            eprintln!("unknown experiment `{other}`; available: {ALL:?}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let scale = Scale::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    println!(
        "# HypDB-rs experiment run (scale: {scale:?})\n\
         Reproduces the evaluation of \"Bias in OLAP Queries\" (SIGMOD 2018).\n\
         Absolute numbers are machine-dependent; compare shapes with the paper."
    );
    let selected: Vec<&str> = if args.is_empty() {
        ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for name in selected {
        let t0 = std::time::Instant::now();
        run_one(name, scale);
        println!("\n[{name} finished in {:.1}s]", t0.elapsed().as_secs_f64());
    }
}
