//! PR-9: flight-recorder fidelity and overhead. Two claims to pin:
//! a journal captured under concurrent mixed load replays to
//! byte-identical bodies against a fresh server, and journaling plus
//! trace retention cost ≤3% on a production-sized cold analyze.

use crate::Scale;
use hypdb_core::{wire, AnalyzeRequest, HypDbConfig, OracleCache};
use hypdb_datasets as ds;
use hypdb_serve::journal::{render_record, RequestRecord};
use hypdb_serve::{client, replay, Registry, ServeConfig, Server};
use serde::Serialize;
use std::sync::Arc;

/// One timed mode of the overhead comparison.
#[derive(Debug, Clone, Serialize)]
pub struct ReplayRunRecord {
    /// `"recorder_off"` or `"recorder_on"` (journal + trace ring).
    pub mode: String,
    /// Minimum wall-clock seconds over the interleaved repetitions.
    pub seconds: f64,
}

/// The machine-readable PR-9 report (`BENCH_pr9.json`).
#[derive(Debug, Clone, Serialize)]
pub struct ReplayBenchReport {
    /// PR number this trajectory point belongs to.
    pub pr: u32,
    /// Experiment tag.
    pub experiment: String,
    /// `std::thread::available_parallelism` on the runner.
    pub available_parallelism: usize,
    /// Built-in dataset rows for the record/replay phase.
    pub record_rows: usize,
    /// Journal records replayed (all byte-identical on pass).
    pub replayed: usize,
    /// Replay body/status mismatches (must be 0).
    pub mismatches: usize,
    /// Replay throughput, requests per second.
    pub replay_rps: f64,
    /// Replay p50 latency, seconds.
    pub replay_p50_seconds: f64,
    /// Adult rows for the overhead phase.
    pub overhead_rows: usize,
    /// `recorder_on.seconds / recorder_off.seconds`.
    pub overhead_ratio: f64,
    /// Both timed overhead modes.
    pub runs: Vec<ReplayRunRecord>,
}

/// Drives a scripted concurrent mixed workload (analyze + detect,
/// cancer + adult, repeated hot requests + unique cold ones) through a
/// journaling server, then replays the captured journal against a
/// fresh non-journaling server and asserts every body reproduces.
fn record_and_replay(scale: Scale) -> (usize, replay::ReplayOutcome) {
    let rows = scale.pick(600, 3_000);
    let per_client = scale.pick(6, 20);
    let journal_path = std::env::temp_dir()
        .join(format!("hypdb_replay_bench_{}.jsonl", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let _ = std::fs::remove_file(&journal_path);

    let record_cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        journal: Some(journal_path.clone()),
        ..ServeConfig::default()
    };
    let handle = Server::start(record_cfg, Registry::builtin(rows)).expect("recording server");
    let addr = handle.addr();

    let lanes = [
        ("/analyze", "cancer", CANCER_SQL),
        ("/detect", "cancer", CANCER_SQL),
        ("/analyze", "adult", ADULT_SQL),
        ("/detect", "adult", ADULT_SQL),
    ];
    std::thread::scope(|scope| {
        for (c, (path, dataset, sql)) in lanes.iter().enumerate() {
            scope.spawn(move || {
                let hot = AnalyzeRequest::new(*dataset, *sql).canonical_json();
                for i in 0..per_client {
                    // Every third request is a unique cold miss; the
                    // rest re-issue the lane's hot request and ride the
                    // report cache — so the journal mixes hits, misses,
                    // both endpoints, and both datasets.
                    let body = if i % 3 == 0 {
                        let mut req = AnalyzeRequest::new(*dataset, *sql);
                        req.seed = Some(9_000 + (c * per_client + i) as u64);
                        req.canonical_json()
                    } else {
                        hot.clone()
                    };
                    let resp = client::post_json(addr, path, &body).expect("recorded request");
                    assert_eq!(resp.status, 200, "{}", resp.body);
                }
            });
        }
    });
    // Shutdown flushes and closes the journal.
    handle.shutdown();

    let text = std::fs::read_to_string(&journal_path).expect("read journal");
    let parsed = replay::parse_journal(&text);
    let recorded = lanes.len() * per_client;
    assert_eq!(
        parsed.items.len(),
        recorded,
        "journal must carry every recorded report request"
    );

    // Fresh server, recorder off: replay must reproduce every body.
    let replay_cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        journal: None,
        debug_traces: 0,
        ..ServeConfig::default()
    };
    let handle = Server::start(replay_cfg, Registry::builtin(rows)).expect("replay server");
    let outcome = replay::replay(handle.addr(), &parsed, 4, replay::Pace::MaxRate);
    handle.shutdown();
    let _ = std::fs::remove_file(&journal_path);

    assert!(
        outcome.passed(),
        "replay must reproduce recorded bytes: {} mismatch(es), {} error(s)",
        outcome.mismatches.len(),
        outcome.errors
    );
    (rows, outcome)
}

const CANCER_SQL: &str =
    "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData GROUP BY Lung_Cancer";
const ADULT_SQL: &str = "SELECT Gender, avg(Income) FROM AdultData GROUP BY Gender";

/// PR-9: replay fidelity under concurrent mixed load, then the
/// recorder's overhead on a ≥150k-row cold adult analyze — recorder
/// off vs on (span tracer + journal line render + bounded-channel
/// append + ring retention), repetitions interleaved, min wall clock
/// per mode, ratio asserted ≤1.03. Writes `BENCH_pr9.json`.
pub fn run(scale: Scale) {
    crate::report::section("PR-9 — flight recorder: replay fidelity + journaling overhead");

    let (record_rows, outcome) = record_and_replay(scale);
    println!(
        "record/replay: {} record(s) replayed byte-identical ({:.1} req/s, p50 {:.3} ms)",
        outcome.replayed,
        outcome.requests_per_second,
        outcome.latency.0 * 1e3
    );

    // Overhead phase: the same analyze path PR-8 pinned, now with the
    // full per-request recording work the server does when the flight
    // recorder is on.
    let rows = scale.pick(150_000, 300_000);
    let data = ds::adult_data(&ds::AdultConfig { rows, seed: 1994 });
    let req = AnalyzeRequest::new("adult", ADULT_SQL);
    let canonical = req.canonical_json();
    let fingerprint = format!("{:016x}", req.fingerprint());
    let base = HypDbConfig::default();

    let journal_path = std::env::temp_dir()
        .join(format!("hypdb_overhead_bench_{}.jsonl", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let journal = hypdb_obs::Journal::open(&journal_path).expect("open bench journal");
    let ring = hypdb_obs::TraceRing::new(16);

    let once = || {
        let cache = Arc::new(OracleCache::new());
        wire::report_body(
            &wire::analyze_cached(&data, &req, &base, Some(&cache)).expect("analysis"),
        )
    };
    let recorded_once = || {
        // Exactly the server's recording path: tracer around the
        // compute, then render the journal record, append it through
        // the bounded channel, and retain the trace in the ring.
        let tick = hypdb_obs::Tick::now();
        let tracer = hypdb_obs::Tracer::new();
        let body = hypdb_obs::with_request(&tracer, once);
        let report = tracer.finish();
        let total_ms = tick.elapsed_secs() * 1e3;
        let line = render_record(&RequestRecord {
            seq: 1,
            method: "POST",
            path: "/analyze",
            dataset: Some("adult"),
            fingerprint: Some(&fingerprint),
            canonical: Some(&canonical),
            cache: Some(false),
            status: 200,
            body: &body,
            planner: None,
            report: Some(&report),
            offset_ms: total_ms,
            queue_wait_ms: 0.0,
            total_ms,
        });
        journal.append(line);
        ring.record(hypdb_obs::TraceEntry {
            seq: 1,
            tag: "/analyze".to_string(),
            millis: total_ms,
            report,
        });
        body
    };

    // Byte-identity pre-check: recording must not move a body byte.
    let plain = once();
    assert_eq!(recorded_once(), plain, "recording changed the wire body");

    const REPS: usize = 5;
    let mut best = [f64::INFINITY; 2];
    for _ in 0..REPS {
        let (body, secs) = crate::timed(once);
        assert_eq!(body, plain);
        best[0] = best[0].min(secs);
        let (body, secs) = crate::timed(recorded_once);
        assert_eq!(body, plain);
        best[1] = best[1].min(secs);
    }
    journal.close();
    let _ = std::fs::remove_file(&journal_path);
    let ratio = best[1] / best[0];
    println!(
        "adult {rows} rows: recorder off {:.3}s, on {:.3}s, ratio {:.4}",
        best[0], best[1], ratio
    );
    assert!(
        ratio <= 1.03,
        "flight-recorder overhead {:.2}% exceeds the 3% budget ({:.3}s vs {:.3}s)",
        (ratio - 1.0) * 100.0,
        best[1],
        best[0]
    );

    let report = ReplayBenchReport {
        pr: 9,
        experiment: "replay_load".to_string(),
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        record_rows,
        replayed: outcome.replayed,
        mismatches: outcome.mismatches.len(),
        replay_rps: outcome.requests_per_second,
        replay_p50_seconds: outcome.latency.0,
        overhead_rows: rows,
        overhead_ratio: ratio,
        runs: vec![
            ReplayRunRecord {
                mode: "recorder_off".to_string(),
                seconds: best[0],
            },
            ReplayRunRecord {
                mode: "recorder_on".to_string(),
                seconds: best[1],
            },
        ],
    };
    let json = serde_json::to_string(&report).expect("serialize");
    let path = "BENCH_pr9.json";
    std::fs::write(path, &json).expect("write BENCH_pr9.json");
    println!(
        "\n(wrote {path}; replay reproduced every recorded body and the recorder \
         stays within the 3% budget)"
    );
}
