//! Fig 6(b) and Fig 8(a): runtime and accuracy of the independence
//! tests — χ², MIT, MIT with group sampling, HyMIT, and the naive
//! row-shuffling permutation test MIT replaces.

use crate::report::{f3, MdTable};
use crate::{timed, Scale};
use hypdb_datasets::random_data::{random_data, RandomDataConfig, RandomDataset};
use hypdb_graph::dsep::d_separated_pair;
use hypdb_stats::independence::{
    chi2_test, hymit, mit, mit_sampled, shuffle_test, MitConfig, Strata,
};
use hypdb_table::contingency::Stratified;
use hypdb_table::AttrId;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// The timed/accuracy-checked procedures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestProc {
    /// Asymptotic χ².
    Chi2,
    /// MIT over all groups.
    Mit,
    /// MIT over a weighted group sample.
    MitSampled,
    /// HyMIT hybrid.
    HyMit,
    /// Naive row shuffling (baseline).
    Shuffle,
}

impl TestProc {
    /// Label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            TestProc::Chi2 => "chi2",
            TestProc::Mit => "MIT",
            TestProc::MitSampled => "MIT(sampling)",
            TestProc::HyMit => "HyMIT",
            TestProc::Shuffle => "shuffle",
        }
    }
}

/// A test case: a variable pair + conditioning set with ground truth.
struct Case {
    x: usize,
    y: usize,
    z: Vec<usize>,
    independent: bool,
}

fn make_cases(d: &RandomDataset, per_dataset: usize, seed: u64) -> Vec<Case> {
    let n = d.dag.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cases = Vec::new();
    let mut attempts = 0;
    while cases.len() < per_dataset && attempts < per_dataset * 50 {
        attempts += 1;
        let x = rng.gen_range(0..n);
        let y = rng.gen_range(0..n);
        if x == y {
            continue;
        }
        let zs = rng.gen_range(0..=2usize);
        let mut z = Vec::new();
        while z.len() < zs {
            let c = rng.gen_range(0..n);
            if c != x && c != y && !z.contains(&c) {
                z.push(c);
            }
        }
        let independent = d_separated_pair(&d.dag, x, y, &z);
        cases.push(Case {
            x,
            y,
            z,
            independent,
        });
    }
    // Balance the classes a little: keep at most 2/3 of one class.
    cases
}

fn run_proc(
    proc: TestProc,
    d: &RandomDataset,
    case: &Case,
    m: usize,
    rng: &mut StdRng,
) -> (f64, f64) {
    // Returns (p_value, seconds), timing the full cost: summarisation +
    // test.
    let table = &d.table;
    let rows = table.all_rows();
    let x = AttrId(case.x as u32);
    let y = AttrId(case.y as u32);
    let z: Vec<AttrId> = case.z.iter().map(|&v| AttrId(v as u32)).collect();
    match proc {
        TestProc::Shuffle => {
            // Raw codes + composite group ids.
            let xc = table.column(x).codes().to_vec();
            let yc = table.column(y).codes().to_vec();
            let groups: Vec<u32> = if z.is_empty() {
                vec![0; table.nrows()]
            } else {
                let mut ids = vec![0u32; table.nrows()];
                let mut mult = 1u32;
                for &a in &z {
                    let codes = table.column(a).codes();
                    for (i, &c) in codes.iter().enumerate() {
                        ids[i] += c * mult;
                    }
                    mult *= table.cardinality(a);
                }
                ids
            };
            let (out, secs) = timed(|| shuffle_test(&xc, &yc, &groups, m, rng));
            (out.p_value, secs)
        }
        _ => {
            let (out, secs) = timed(|| {
                let strata: Strata = Stratified::build(table, &rows, x, y, &z);
                match proc {
                    TestProc::Chi2 => chi2_test(&strata),
                    TestProc::Mit => mit(&strata, m, rng),
                    TestProc::MitSampled => {
                        let k = MitConfig::auto_group_sample(strata.num_groups());
                        mit_sampled(&strata, m, k, rng)
                    }
                    TestProc::HyMit => hymit(
                        &strata,
                        &MitConfig {
                            permutations: m,
                            ..MitConfig::default()
                        },
                        rng,
                    ),
                    TestProc::Shuffle => unreachable!(),
                }
            });
            (out.p_value, secs)
        }
    }
}

/// Fig 6(b): average wall time per independence test vs sample size.
pub fn run_fig6b(scale: Scale) {
    crate::report::section("Fig 6(b) — runtime per independence test (seconds)");
    let sizes: Vec<usize> = scale.pick(
        vec![10_000, 20_000, 40_000],
        vec![10_000, 20_000, 30_000, 40_000, 50_000],
    );
    let m = 100;
    let procs = [
        TestProc::Mit,
        TestProc::MitSampled,
        TestProc::HyMit,
        TestProc::Chi2,
        TestProc::Shuffle,
    ];
    let mut headers = vec!["rows".to_string()];
    headers.extend(procs.iter().map(|p| p.label().to_string()));
    let mut t = MdTable::new(headers);
    for &rows in &sizes {
        let d = random_data(&RandomDataConfig {
            nodes: 8,
            expected_edges: 12.0,
            rows,
            min_categories: 2,
            max_categories: 8,
            seed: 0xF16B,
            ..RandomDataConfig::default()
        });
        let cases = make_cases(&d, scale.pick(6, 12), 42);
        let mut rng = StdRng::seed_from_u64(1);
        let mut cells = vec![rows.to_string()];
        for &p in &procs {
            let mut total = 0.0;
            for c in &cases {
                let (_, secs) = run_proc(p, &d, c, m, &mut rng);
                total += secs;
            }
            cells.push(format!("{:.4}", total / cases.len() as f64));
        }
        t.row(cells);
    }
    t.print();
    println!(
        "\n(paper, for shape: MIT(sampling) and HyMIT are much faster than MIT; \
         all contingency-table tests dwarf the row-shuffling baseline, whose \
         cost grows linearly with the data; m = {m} permutations)"
    );
}

/// Fig 8(a): decision quality (F1 on detecting dependence) of the four
/// tests on sparse samples.
pub fn run_fig8a(scale: Scale) {
    crate::report::section("Fig 8(a) — independence-test accuracy (F1 of dependence detection)");
    let sizes: Vec<usize> = scale.pick(
        vec![2_000, 8_000, 30_000],
        vec![2_000, 5_000, 10_000, 30_000, 50_000],
    );
    let alpha = 0.01;
    let m = 100;
    let procs = [
        TestProc::Mit,
        TestProc::MitSampled,
        TestProc::HyMit,
        TestProc::Chi2,
    ];
    let mut headers = vec!["rows".to_string()];
    headers.extend(procs.iter().map(|p| p.label().to_string()));
    let mut t = MdTable::new(headers);
    for &rows in &sizes {
        let mut cells = vec![rows.to_string()];
        for &p in &procs {
            let (mut tp, mut fp, mut fn_) = (0u32, 0u32, 0u32);
            for seed in scale.pick(0..3u64, 0..6u64) {
                let d = random_data(&RandomDataConfig {
                    nodes: 8,
                    expected_edges: 12.0,
                    rows,
                    min_categories: 2,
                    max_categories: 10,
                    seed: 0x8A + seed,
                    alpha: 0.4,
                    ..RandomDataConfig::default()
                });
                let cases = make_cases(&d, 24, 7 + seed);
                let mut rng = StdRng::seed_from_u64(seed);
                for c in &cases {
                    let (pv, _) = run_proc(p, &d, c, m, &mut rng);
                    let said_dependent = pv <= alpha;
                    match (said_dependent, c.independent) {
                        (true, false) => tp += 1,
                        (true, true) => fp += 1,
                        (false, false) => fn_ += 1,
                        (false, true) => {}
                    }
                }
            }
            let precision = tp as f64 / (tp + fp).max(1) as f64;
            let recall = tp as f64 / (tp + fn_).max(1) as f64;
            let f1 = if precision + recall == 0.0 {
                0.0
            } else {
                2.0 * precision * recall / (precision + recall)
            };
            cells.push(f3(f1));
        }
        t.row(cells);
    }
    t.print();
    println!(
        "\n(paper, for shape: the four tests are comparably accurate, with the \
         permutation-based ones ahead on the sparsest samples; α = {alpha})"
    );
}
