//! Experiment harness for the paper's evaluation (§7): one module per
//! table/figure, shared runners, and a markdown report printer.
//!
//! Run everything with
//!
//! ```sh
//! cargo run --release -p hypdb-bench --bin experiments            # all
//! cargo run --release -p hypdb-bench --bin experiments -- fig5b  # one
//! HYPDB_SCALE=full cargo run --release -p hypdb-bench --bin experiments
//! ```
//!
//! `HYPDB_SCALE` selects `quick` (default; minutes) or `full` (closer
//! to the paper's sweeps; tens of minutes). Absolute numbers will not
//! match the paper's testbed; the *shape* (who wins, by what factor,
//! where crossovers fall) is the reproduction target — see
//! EXPERIMENTS.md.
#![forbid(unsafe_code)]

pub mod end_to_end;
pub mod fig5a;
pub mod obs;
pub mod opts;
pub mod quality;
pub mod replay_load;
pub mod report;
pub mod scaling;
pub mod serve_throughput;
pub mod shard_scaling;
pub mod table1;
pub mod tests_perf;

/// Experiment scale, from the `HYPDB_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast sweeps for CI / laptops (default).
    Quick,
    /// Paper-sized sweeps (minutes to tens of minutes).
    Full,
}

impl Scale {
    /// Reads `HYPDB_SCALE` (`quick`/`full`).
    pub fn from_env() -> Scale {
        match std::env::var("HYPDB_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Picks between two values by scale.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Times a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = std::time::Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Times a closure with the global worker count pinned to `threads`,
/// then restores the environment-driven default. Shared by the scaling
/// experiments; the determinism layer guarantees the pinned count
/// changes only the wall clock, never the result.
pub fn timed_at_threads<T>(threads: usize, f: impl FnOnce() -> T) -> (T, f64) {
    hypdb_exec::set_global_threads(threads);
    let out = timed(f);
    hypdb_exec::set_global_threads(0);
    out
}
