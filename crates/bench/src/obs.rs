//! PR-8: observability overhead. The span collector, histogram
//! observations, and the explain sink ride every request; this
//! experiment pins their cost — a traced analyze must stay within 3%
//! of an untraced one on a production-sized table, and must not move
//! a single byte of the wire body.

use crate::Scale;
use hypdb_core::{wire, AnalyzeRequest, HypDbConfig, OracleCache};
use hypdb_datasets as ds;
use serde::Serialize;
use std::sync::Arc;

/// One timed mode of the overhead comparison.
#[derive(Debug, Clone, Serialize)]
pub struct ObsRunRecord {
    /// `"untraced"` or `"traced"` (span + explain collector installed).
    pub mode: String,
    /// Minimum wall-clock seconds over the interleaved repetitions.
    pub seconds: f64,
}

/// The machine-readable PR-8 report (`BENCH_pr8.json`).
#[derive(Debug, Clone, Serialize)]
pub struct ObsBenchReport {
    /// PR number this trajectory point belongs to.
    pub pr: u32,
    /// Experiment tag.
    pub experiment: String,
    /// Adult rows analyzed.
    pub rows: usize,
    /// `std::thread::available_parallelism` on the runner.
    pub available_parallelism: usize,
    /// `traced.seconds / untraced.seconds`.
    pub overhead_ratio: f64,
    /// Both timed modes.
    pub runs: Vec<ObsRunRecord>,
}

/// PR-8: cold analyze on a ≥100k-row adult table, tracing off vs on —
/// repetitions interleaved so machine-load drift hits both modes
/// equally, each mode reporting its minimum wall clock. Asserts the
/// traced body is byte-identical to the untraced one and the traced
/// minimum stays within 3% of the untraced minimum, then writes
/// `BENCH_pr8.json`.
pub fn run(scale: Scale) {
    crate::report::section("PR-8 — observability overhead (spans + histograms + explain sink)");
    let rows = scale.pick(150_000, 300_000);
    let data = ds::adult_data(&ds::AdultConfig { rows, seed: 1994 });
    let req = AnalyzeRequest::new(
        "adult",
        "SELECT Gender, avg(Income) FROM AdultData GROUP BY Gender",
    );
    let base = HypDbConfig::default();

    // One cold analyze: fresh oracle cache, full wire body rendered so
    // the serialization path is measured too.
    let once = || {
        let cache = Arc::new(OracleCache::new());
        wire::report_body(
            &wire::analyze_cached(&data, &req, &base, Some(&cache)).expect("analysis"),
        )
    };
    let traced_once = || {
        // The HYPDB_TRACE middleware's tracer (explain-capable, like the
        // server installs), minus the stderr dump.
        let tracer = hypdb_obs::Tracer::with_explain();
        let body = hypdb_obs::with_request(&tracer, once);
        let report = tracer.finish();
        assert!(!report.spans.is_empty(), "tracer observed no spans");
        body
    };

    // Byte-identity pre-check: observation must be pure.
    let plain = once();
    assert_eq!(traced_once(), plain, "tracing changed the wire body");

    const REPS: usize = 5;
    let mut best = [f64::INFINITY; 2];
    for _ in 0..REPS {
        let (body, secs) = crate::timed(once);
        assert_eq!(body, plain);
        best[0] = best[0].min(secs);
        let (body, secs) = crate::timed(traced_once);
        assert_eq!(body, plain);
        best[1] = best[1].min(secs);
    }
    let ratio = best[1] / best[0];
    println!(
        "adult {rows} rows: untraced {:.3}s, traced {:.3}s, ratio {:.4}",
        best[0], best[1], ratio
    );
    assert!(
        ratio <= 1.03,
        "tracing overhead {:.2}% exceeds the 3% budget ({:.3}s vs {:.3}s)",
        (ratio - 1.0) * 100.0,
        best[1],
        best[0]
    );

    let report = ObsBenchReport {
        pr: 8,
        experiment: "obs_overhead".to_string(),
        rows,
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        overhead_ratio: ratio,
        runs: vec![
            ObsRunRecord {
                mode: "untraced".to_string(),
                seconds: best[0],
            },
            ObsRunRecord {
                mode: "traced".to_string(),
                seconds: best[1],
            },
        ],
    };
    let json = serde_json::to_string(&report).expect("serialize");
    let path = "BENCH_pr8.json";
    std::fs::write(path, &json).expect("write BENCH_pr8.json");
    println!("\n(wrote {path}; traced runs are byte-identical and within the 3% budget)");
}
