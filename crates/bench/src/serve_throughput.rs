//! PR-4 serve-throughput experiment: loopback clients hammering
//! `POST /analyze` with a mix of cached and uncached requests at
//! several worker counts.
//!
//! Prints a markdown table and writes `BENCH_pr4.json`, continuing the
//! perf trajectory (`BENCH_pr2.json` scaling, `BENCH_pr3.json` shard
//! scaling). Every response is checked for status 200, and the
//! determinism layer guarantees identical requests produce identical
//! bytes at every worker count — this experiment only measures how
//! fast they arrive.

use crate::report::MdTable;
use crate::Scale;
use hypdb_core::AnalyzeRequest;
use hypdb_datasets as ds;
use hypdb_serve::{client, Registry, ServeConfig, Server};
use serde::Serialize;

const SQL: &str = "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData GROUP BY Lung_Cancer";

/// One timed run at one worker count.
#[derive(Debug, Clone, Serialize)]
pub struct ServeRunRecord {
    /// Server worker threads.
    pub workers: usize,
    /// Concurrent loopback clients.
    pub clients: usize,
    /// Requests issued (all clients, priming excluded).
    pub requests: usize,
    /// Wall-clock seconds for the whole hammering phase.
    pub seconds: f64,
    /// Requests per second.
    pub rps: f64,
    /// Cache hits observed by the server.
    pub cache_hits: u64,
    /// Reports computed (cache misses).
    pub cache_misses: u64,
}

/// The machine-readable report (`BENCH_pr4.json`).
#[derive(Debug, Clone, Serialize)]
pub struct ServeBenchReport {
    /// PR number this trajectory point belongs to.
    pub pr: u32,
    /// `std::thread::available_parallelism` on the runner.
    pub available_parallelism: usize,
    /// Dataset rows served.
    pub rows: usize,
    /// All timed runs.
    pub runs: Vec<ServeRunRecord>,
}

/// Runs the sweep, prints the table, writes `BENCH_pr4.json`.
pub fn run(scale: Scale) {
    crate::report::section("PR-4 serve throughput — loopback /analyze, cached/uncached mix");
    let rows = scale.pick(800, 5_000);
    let per_client = scale.pick(12, 50);
    let table = ds::cancer_data(rows, 1);
    let mut runs: Vec<ServeRunRecord> = Vec::new();

    for workers in [1usize, 2, 4] {
        let mut registry = Registry::new();
        registry.insert("cancer", &table);
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            queue_capacity: 512,
            ..ServeConfig::default()
        };
        let handle = Server::start(cfg, registry).expect("server starts");
        let addr = handle.addr();

        // The shared (cacheable) request, primed once so the hammering
        // phase's hit/miss split is deterministic up to the per-client
        // uncached first requests.
        let shared = AnalyzeRequest::new("cancer", SQL).canonical_json();
        let prime = client::post_json(addr, "/analyze", &shared).expect("prime");
        assert_eq!(prime.status, 200, "{}", prime.body);

        let clients = (workers * 2).max(2);
        let (_, seconds) = crate::timed(|| {
            std::thread::scope(|scope| {
                for c in 0..clients {
                    let shared = &shared;
                    scope.spawn(move || {
                        for i in 0..per_client {
                            // First request per client is unique (a cache
                            // miss that runs the full pipeline); the rest
                            // ride the report cache.
                            let body = if i == 0 {
                                let mut req = AnalyzeRequest::new("cancer", SQL);
                                req.seed = Some(1_000 + c as u64);
                                req.canonical_json()
                            } else {
                                shared.clone()
                            };
                            let resp = client::post_json(addr, "/analyze", &body).expect("request");
                            assert_eq!(resp.status, 200, "{}", resp.body);
                        }
                    });
                }
            });
        });

        let metrics = handle.metrics();
        let requests = clients * per_client;
        runs.push(ServeRunRecord {
            workers,
            clients,
            requests,
            seconds,
            rps: requests as f64 / seconds.max(1e-9),
            cache_hits: metrics.cache_hits,
            cache_misses: metrics.cache_misses,
        });
        handle.shutdown();
    }

    let mut table_md = MdTable::new([
        "workers", "clients", "requests", "seconds", "req/s", "hits", "misses",
    ]);
    for r in &runs {
        table_md.row([
            r.workers.to_string(),
            r.clients.to_string(),
            r.requests.to_string(),
            format!("{:.3}", r.seconds),
            format!("{:.1}", r.rps),
            r.cache_hits.to_string(),
            r.cache_misses.to_string(),
        ]);
    }
    println!("{}", table_md.render());

    let report = ServeBenchReport {
        pr: 4,
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        rows,
        runs,
    };
    let json = serde_json::to_string(&report).expect("serialize");
    let path = "BENCH_pr4.json";
    std::fs::write(path, &json).expect("write BENCH_pr4.json");
    println!(
        "\n(wrote {path}; identical requests are byte-identical at every worker count — \
         only req/s may differ)"
    );
}
