//! Figs 1, 3 and 4: the five end-to-end dataset reports, printed in the
//! paper's layout (SQL answer vs rewritten total vs rewritten direct,
//! coarse- and fine-grained explanations) — plus the PR-5 multi-query
//! comparison (batched vs call-at-a-time analyze, `BENCH_pr5.json`).

use crate::report::MdTable;
use crate::Scale;
use hypdb_core::{HypDb, HypDbConfig, OracleCache, Query};
use hypdb_datasets as ds;
use hypdb_table::Table;
use serde::Serialize;
use std::sync::Arc;

/// One timed analyze run of the PR-5 comparison.
#[derive(Debug, Clone, Serialize)]
pub struct MqoRunRecord {
    /// Dataset analyzed.
    pub dataset: String,
    /// `"batched"` (planner on) or `"call_at_a_time"` (planner off).
    pub mode: String,
    /// Wall-clock seconds for the cold (uncached) analyze.
    pub seconds: f64,
    /// Full contingency-table row scans (the number batching exists to
    /// cut; `OracleStats::table_scans`).
    pub count_scans: u64,
    /// Contingency tables served from the materialisation cache.
    pub count_cache_hits: u64,
    /// Contingency tables derived from cached supersets.
    pub marginalizations: u64,
    /// Independence tests performed.
    pub tests: u64,
    /// Statements routed through the batch planner.
    pub batched_statements: u64,
    /// Statement groups the planner formed.
    pub groups_planned: u64,
}

/// The machine-readable PR-5 report (`BENCH_pr5.json`).
#[derive(Debug, Clone, Serialize)]
pub struct MqoBenchReport {
    /// PR number this trajectory point belongs to.
    pub pr: u32,
    /// Experiment tag.
    pub experiment: String,
    /// `std::thread::available_parallelism` on the runner.
    pub available_parallelism: usize,
    /// All timed runs.
    pub runs: Vec<MqoRunRecord>,
}

fn mqo_run(dataset: &str, table: &Table, sql: &str, batched: bool) -> MqoRunRecord {
    let mut cfg = HypDbConfig::default();
    cfg.ci.batch.enabled = batched;
    let cache = Arc::new(OracleCache::new());
    let q = Query::from_sql(sql, table).expect("query");
    let db = HypDb::new(table)
        .with_config(cfg)
        .with_oracle_cache(Arc::clone(&cache));
    let (report, seconds) = crate::timed(|| db.analyze(&q).expect("analysis"));
    assert!(!report.contexts.is_empty());
    let s = cache.stats();
    MqoRunRecord {
        dataset: dataset.to_string(),
        mode: if batched { "batched" } else { "call_at_a_time" }.to_string(),
        seconds,
        count_scans: s.table_scans,
        count_cache_hits: s.count_cache_hits,
        marginalizations: s.marginalizations,
        tests: s.tests,
        batched_statements: s.batched_statements,
        groups_planned: s.groups_planned,
    }
}

/// PR-5: batched vs call-at-a-time independence testing on the two
/// ground-truth datasets. Prints the comparison, asserts the planner's
/// core win (strictly fewer full contingency scans *and* identical
/// report bytes), and writes `BENCH_pr5.json`.
fn run_mqo_comparison(scale: Scale) {
    crate::report::section(
        "PR-5 — batched multi-query independence testing vs call-at-a-time (cold analyze)",
    );
    let cases: Vec<(&str, Table, &str)> = vec![
        (
            "cancer",
            ds::cancer_data(scale.pick(2_000, 10_000), 1),
            "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData GROUP BY Lung_Cancer",
        ),
        (
            "adult",
            ds::adult_data(&ds::AdultConfig {
                rows: scale.pick(8_000, 30_000),
                seed: 1994,
            }),
            "SELECT Gender, avg(Income) FROM AdultData GROUP BY Gender",
        ),
    ];
    let mut runs: Vec<MqoRunRecord> = Vec::new();
    let mut table = MdTable::new([
        "dataset",
        "mode",
        "seconds",
        "count_scans",
        "marginalizations",
        "batched stmts",
        "groups",
    ]);
    for (name, data, sql) in &cases {
        // Byte-identity first: the planner must not move a single byte.
        let mut cfg_on = HypDbConfig::default();
        cfg_on.ci.batch.enabled = true;
        let mut cfg_off = cfg_on;
        cfg_off.ci.batch.enabled = false;
        let q = Query::from_sql(sql, data).expect("query");
        let on = HypDb::new(data)
            .with_config(cfg_on)
            .analyze(&q)
            .expect("analysis");
        let off = HypDb::new(data)
            .with_config(cfg_off)
            .analyze(&q)
            .expect("analysis");
        assert_eq!(
            on.contexts, off.contexts,
            "{name}: batching changed report content"
        );
        assert_eq!(on.covariates, off.covariates);
        assert_eq!(on.mediators, off.mediators);

        for batched in [false, true] {
            let rec = mqo_run(name, data, sql, batched);
            table.row([
                rec.dataset.clone(),
                rec.mode.clone(),
                format!("{:.3}", rec.seconds),
                rec.count_scans.to_string(),
                rec.marginalizations.to_string(),
                rec.batched_statements.to_string(),
                rec.groups_planned.to_string(),
            ]);
            runs.push(rec);
        }
        let seq = &runs[runs.len() - 2];
        let bat = &runs[runs.len() - 1];
        assert!(
            bat.count_scans < seq.count_scans,
            "{name}: batched CD must perform strictly fewer full scans \
             ({} vs {})",
            bat.count_scans,
            seq.count_scans
        );
        assert!(bat.batched_statements > 0 && bat.groups_planned > 0);
        assert_eq!(seq.batched_statements, 0);
    }
    println!("{}", table.render());

    let report = MqoBenchReport {
        pr: 5,
        experiment: "batched_vs_call_at_a_time_analyze".to_string(),
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        runs,
    };
    let json = serde_json::to_string(&report).expect("serialize");
    let path = "BENCH_pr5.json";
    std::fs::write(path, &json).expect("write BENCH_pr5.json");
    println!(
        "\n(wrote {path}; batched runs are byte-identical to call-at-a-time \
         and perform strictly fewer full contingency scans)"
    );
}

/// One timed run of the PR-7 planner comparison.
#[derive(Debug, Clone, Serialize)]
pub struct PlannerRunRecord {
    /// Dataset analyzed.
    pub dataset: String,
    /// `"batched"` (cost-based planner) or `"call_at_a_time"`.
    pub mode: String,
    /// Worker-pool size the run was pinned to.
    pub threads: usize,
    /// Wall-clock seconds for the cold (uncached) analyze.
    pub seconds: f64,
    /// Full contingency-table row scans.
    pub count_scans: u64,
    /// Planner decisions to scan directly.
    pub scans_direct: u64,
    /// Planner decisions to derive from a cached superset.
    pub marginalised_from_superset: u64,
    /// Intermediate marginals materialised by lattice descent.
    pub lattice_intermediates: u64,
    /// Round statements skipped by speculation pruning.
    pub speculative_skipped: u64,
    /// Independence tests performed.
    pub tests: u64,
}

/// The machine-readable PR-7 report (`BENCH_pr7.json`).
#[derive(Debug, Clone, Serialize)]
pub struct PlannerBenchReport {
    /// PR number this trajectory point belongs to.
    pub pr: u32,
    /// Experiment tag.
    pub experiment: String,
    /// `std::thread::available_parallelism` on the runner.
    pub available_parallelism: usize,
    /// All timed runs.
    pub runs: Vec<PlannerRunRecord>,
}

/// One timed cold analyze in the given mode: fresh oracle cache, the
/// worker pool pinned by the caller.
fn planner_once(table: &Table, q: &Query, batched: bool) -> (f64, hypdb_core::OracleStats) {
    let mut cfg = HypDbConfig::default();
    cfg.ci.batch.enabled = batched;
    let cache = Arc::new(OracleCache::new());
    let db = HypDb::new(table)
        .with_config(cfg)
        .with_oracle_cache(Arc::clone(&cache));
    let (report, secs) = crate::timed(|| db.analyze(q).expect("analysis"));
    assert!(!report.contexts.is_empty());
    (secs, cache.stats())
}

/// Both modes at one thread count, repetitions *interleaved* —
/// sequential, batched, sequential, batched… — so machine-load drift
/// hits both modes equally, with each mode reporting its minimum
/// wall clock (the standard noise-robust estimator). The work counters
/// are deterministic, so any repetition's snapshot serves.
fn planner_pair(
    dataset: &str,
    table: &Table,
    sql: &str,
    threads: usize,
) -> (PlannerRunRecord, PlannerRunRecord) {
    const REPS: usize = 5;
    let q = Query::from_sql(sql, table).expect("query");
    hypdb_exec::set_global_threads(threads);
    let mut best = [f64::INFINITY; 2];
    let mut stats = [None, None];
    for _ in 0..REPS {
        for (slot, batched) in [(0usize, false), (1, true)] {
            let (secs, s) = planner_once(table, &q, batched);
            best[slot] = best[slot].min(secs);
            stats[slot] = Some(s);
        }
    }
    hypdb_exec::set_global_threads(0);
    let record = |slot: usize, batched: bool| {
        let s = stats[slot].expect("repetitions completed");
        PlannerRunRecord {
            dataset: dataset.to_string(),
            mode: if batched { "batched" } else { "call_at_a_time" }.to_string(),
            threads,
            seconds: best[slot],
            count_scans: s.table_scans,
            scans_direct: s.scans_direct,
            marginalised_from_superset: s.marginalised_from_superset,
            lattice_intermediates: s.lattice_intermediates,
            speculative_skipped: s.speculative_skipped,
            tests: s.tests,
        }
    };
    (record(0, false), record(1, true))
}

/// PR-7: the cost-based planner (support prediction, per-group strategy
/// choice, lattice descent, speculation pruning) vs call-at-a-time on a
/// ≥100k-row adult table, at 1 and 4 worker threads. Asserts the
/// planner's win — batched strictly faster wall-clock *and* strictly
/// fewer full scans, with byte-identical reports — and writes
/// `BENCH_pr7.json`.
pub fn run_planner(scale: Scale) {
    crate::report::section(
        "PR-7 — cost-based planner (lattice descent + speculation pruning) vs call-at-a-time",
    );
    // 150k keeps quick-scale CI runs ~4s while making the planner's
    // scan savings dominate per-round fixed costs at both thread
    // counts (the gap scales with rows; noise does not).
    let rows = scale.pick(150_000, 300_000);
    let dataset = "adult";
    let data = ds::adult_data(&ds::AdultConfig { rows, seed: 1994 });
    let sql = "SELECT Gender, avg(Income) FROM AdultData GROUP BY Gender";

    // Byte-identity across strategy × thread configurations first: the
    // planner must not move a single byte of the report.
    let q = Query::from_sql(sql, &data).expect("query");
    let mut baseline = None;
    for batched in [false, true] {
        for threads in [1usize, 4] {
            let mut cfg = HypDbConfig::default();
            cfg.ci.batch.enabled = batched;
            hypdb_exec::set_global_threads(threads);
            let report = HypDb::new(&data)
                .with_config(cfg)
                .analyze(&q)
                .expect("analysis");
            hypdb_exec::set_global_threads(0);
            let key = (report.contexts, report.covariates, report.mediators);
            match &baseline {
                None => baseline = Some(key),
                Some(b) => assert_eq!(
                    &key, b,
                    "batched={batched} threads={threads} changed report content"
                ),
            }
        }
    }

    let mut runs: Vec<PlannerRunRecord> = Vec::new();
    let mut table = MdTable::new([
        "dataset",
        "mode",
        "threads",
        "seconds",
        "count_scans",
        "superset marg.",
        "lattice",
        "spec. skipped",
    ]);
    for threads in [1usize, 4] {
        let (seq, bat) = planner_pair(dataset, &data, sql, threads);
        for rec in [seq, bat] {
            table.row([
                rec.dataset.clone(),
                rec.mode.clone(),
                rec.threads.to_string(),
                format!("{:.3}", rec.seconds),
                rec.count_scans.to_string(),
                rec.marginalised_from_superset.to_string(),
                rec.lattice_intermediates.to_string(),
                rec.speculative_skipped.to_string(),
            ]);
            runs.push(rec);
        }
    }
    println!("{}", table.render());
    for pair in runs.chunks(2) {
        let (seq, bat) = (&pair[0], &pair[1]);
        let threads = seq.threads;
        assert!(
            bat.count_scans < seq.count_scans,
            "threads={threads}: batched must perform strictly fewer full scans ({} vs {})",
            bat.count_scans,
            seq.count_scans
        );
        assert!(
            bat.seconds < seq.seconds,
            "threads={threads}: batched analyze regressed above call-at-a-time \
             ({:.3}s vs {:.3}s)",
            bat.seconds,
            seq.seconds
        );
        assert!(bat.speculative_skipped > 0, "speculation pruning engaged");
    }

    let report = PlannerBenchReport {
        pr: 7,
        experiment: "cost_based_planner_vs_call_at_a_time".to_string(),
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        runs,
    };
    let json = serde_json::to_string(&report).expect("serialize");
    let path = "BENCH_pr7.json";
    std::fs::write(path, &json).expect("write BENCH_pr7.json");
    println!(
        "\n(wrote {path}; batched runs are byte-identical to call-at-a-time, \
         strictly faster, and perform strictly fewer full contingency scans)"
    );
}

/// One timed run of the PR-10 staged-permutation comparison.
#[derive(Debug, Clone, Serialize)]
pub struct StagedRunRecord {
    /// Dataset analyzed.
    pub dataset: String,
    /// `"staged"` (screening + escalation) or `"single_stage"`.
    pub mode: String,
    /// Worker-pool size the run was pinned to.
    pub threads: usize,
    /// Wall-clock seconds for the cold (uncached) analyze.
    pub seconds: f64,
    /// Permutations evaluated across every settled MIT job — the work
    /// metric the staged engine exists to cut.
    pub mit_permutations: u64,
    /// Jobs settled at a screening checkpoint.
    pub mit_stage1_settled: u64,
    /// Screened jobs escalated to their full budget.
    pub mit_escalated: u64,
    /// Independence tests performed.
    pub tests: u64,
}

/// The machine-readable PR-10 report (`BENCH_pr10.json`).
#[derive(Debug, Clone, Serialize)]
pub struct StagedBenchReport {
    /// PR number this trajectory point belongs to.
    pub pr: u32,
    /// Experiment tag.
    pub experiment: String,
    /// `std::thread::available_parallelism` on the runner.
    pub available_parallelism: usize,
    /// Permutation-work reduction (single-stage ÷ staged) at each
    /// measured thread count, keyed by thread count string.
    pub permutation_reduction: Vec<(String, f64)>,
    /// All timed runs.
    pub runs: Vec<StagedRunRecord>,
}

/// The PR-10 measurement regime. The default HyMIT dispatch settles
/// every statement of this workload through the χ² shortcut (df·β ≤ n
/// at bench row counts), which would leave the staged engine nothing
/// to cut — so the experiment pins β high enough that every df > 0
/// statement takes the real permutation path, at a production-accuracy
/// budget of m = 400. Staging must hold its invariant in *any* regime;
/// this one is simply where permutation work dominates.
fn staged_cfg(staged: bool) -> HypDbConfig {
    let mut cfg = HypDbConfig::default();
    cfg.ci.mit.beta = 1e12;
    cfg.ci.mit.permutations = 400;
    cfg.ci.mit.staged = staged;
    cfg
}

/// One timed cold analyze with staging pinned on or off: fresh oracle
/// cache, worker pool pinned by the caller.
fn staged_once(table: &Table, q: &Query, staged: bool) -> (f64, hypdb_core::OracleStats) {
    let cfg = staged_cfg(staged);
    let cache = Arc::new(OracleCache::new());
    let db = HypDb::new(table)
        .with_config(cfg)
        .with_oracle_cache(Arc::clone(&cache));
    let (report, secs) = crate::timed(|| db.analyze(q).expect("analysis"));
    assert!(!report.contexts.is_empty());
    (secs, cache.stats())
}

/// Both modes at one thread count, repetitions interleaved (see
/// [`planner_pair`] for the rationale), each mode keeping its minimum
/// wall clock. Work counters are deterministic per mode.
fn staged_pair(
    dataset: &str,
    table: &Table,
    q: &Query,
    threads: usize,
) -> (StagedRunRecord, StagedRunRecord) {
    const REPS: usize = 5;
    hypdb_exec::set_global_threads(threads);
    let mut best = [f64::INFINITY; 2];
    let mut stats = [None, None];
    for _ in 0..REPS {
        for (slot, staged) in [(0usize, false), (1, true)] {
            let (secs, s) = staged_once(table, q, staged);
            best[slot] = best[slot].min(secs);
            stats[slot] = Some(s);
        }
    }
    hypdb_exec::set_global_threads(0);
    let record = |slot: usize, staged: bool| {
        let s: hypdb_core::OracleStats = stats[slot].expect("repetitions completed");
        StagedRunRecord {
            dataset: dataset.to_string(),
            mode: if staged { "staged" } else { "single_stage" }.to_string(),
            threads,
            seconds: best[slot],
            mit_permutations: s.mit_permutations,
            mit_stage1_settled: s.mit_stage1_settled,
            mit_escalated: s.mit_escalated,
            tests: s.tests,
        }
    };
    (record(0, false), record(1, true))
}

/// PR-10: staged permutation budgets (cheap screening pass +
/// deterministic escalation of near-alpha survivors) vs the pinned
/// single-stage path on a ≥150k-row adult table, at 1 and 4 worker
/// threads. Asserts the headline invariant — byte-identical reports
/// across stages {on, off} × threads {1, 4} — plus the perf gate:
/// permutation work cut ≥3× with wall-clock strictly no worse. Writes
/// `BENCH_pr10.json`.
pub fn run_staged(scale: Scale) {
    crate::report::section(
        "PR-10 — staged permutation budgets (screen + escalate) vs single-stage",
    );
    let rows = scale.pick(150_000, 300_000);
    let dataset = "adult";
    let data = ds::adult_data(&ds::AdultConfig { rows, seed: 1994 });
    let sql = "SELECT Gender, avg(Income) FROM AdultData GROUP BY Gender";
    let q = Query::from_sql(sql, &data).expect("query");

    // Byte-identity first: staging must not move a single byte at any
    // configuration point.
    let mut baseline = None;
    for staged in [false, true] {
        for threads in [1usize, 4] {
            let cfg = staged_cfg(staged);
            hypdb_exec::set_global_threads(threads);
            let report = HypDb::new(&data)
                .with_config(cfg)
                .analyze(&q)
                .expect("analysis");
            hypdb_exec::set_global_threads(0);
            let key = (report.contexts, report.covariates, report.mediators);
            match &baseline {
                None => baseline = Some(key),
                Some(b) => assert_eq!(
                    &key, b,
                    "staged={staged} threads={threads} changed report content"
                ),
            }
        }
    }

    let mut runs: Vec<StagedRunRecord> = Vec::new();
    let mut table = MdTable::new([
        "dataset",
        "mode",
        "threads",
        "seconds",
        "permutations",
        "stage-1 settled",
        "escalated",
    ]);
    for threads in [1usize, 4] {
        let (single, staged) = staged_pair(dataset, &data, &q, threads);
        for rec in [single, staged] {
            table.row([
                rec.dataset.clone(),
                rec.mode.clone(),
                rec.threads.to_string(),
                format!("{:.3}", rec.seconds),
                rec.mit_permutations.to_string(),
                rec.mit_stage1_settled.to_string(),
                rec.mit_escalated.to_string(),
            ]);
            runs.push(rec);
        }
    }
    println!("{}", table.render());

    let mut permutation_reduction: Vec<(String, f64)> = Vec::new();
    for pair in runs.chunks(2) {
        let (single, staged) = (&pair[0], &pair[1]);
        let threads = single.threads;
        assert!(
            single.mit_permutations > 0,
            "threads={threads}: the workload must engage the MIT permutation path"
        );
        assert!(staged.mit_stage1_settled > 0, "screening must settle jobs");
        let reduction = single.mit_permutations as f64 / staged.mit_permutations.max(1) as f64;
        assert!(
            reduction >= 3.0,
            "threads={threads}: permutation work must drop >=3x, got {reduction:.2}x \
             ({} vs {})",
            staged.mit_permutations,
            single.mit_permutations
        );
        assert!(
            staged.seconds <= single.seconds,
            "threads={threads}: staged analyze regressed above single-stage \
             ({:.3}s vs {:.3}s)",
            staged.seconds,
            single.seconds
        );
        permutation_reduction.push((threads.to_string(), reduction));
    }

    let report = StagedBenchReport {
        pr: 10,
        experiment: "staged_permutation_budgets_vs_single_stage".to_string(),
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        permutation_reduction,
        runs,
    };
    let json = serde_json::to_string(&report).expect("serialize");
    let path = "BENCH_pr10.json";
    std::fs::write(path, &json).expect("write BENCH_pr10.json");
    println!(
        "\n(wrote {path}; staged runs are byte-identical to single-stage, \
         cut permutation work >=3x, and are wall-clock no worse)"
    );
}

/// Runs all five analyses and prints their reports.
pub fn run(scale: Scale) {
    crate::report::section("Fig 1 — FlightData: Simpson's paradox, detected, explained, removed");
    {
        let table = ds::flight_data(&ds::FlightConfig::default());
        let q = Query::from_sql(
            "SELECT Carrier, avg(Delayed) FROM FlightData \
             WHERE Carrier IN ('AA','UA') AND Airport IN ('COS','MFE','MTJ','ROC') \
             GROUP BY Carrier",
            &table,
        )
        .expect("query");
        let report = HypDb::new(&table).analyze(&q).expect("analysis");
        println!("{report}");
        println!(
            "(paper: SQL favours AA; rewritten favours UA (total), direct \
             difference insignificant; top covariate Airport, then Year; top \
             triple (UA, ROC, delayed))"
        );
    }

    crate::report::section("Fig 3 (top) — AdultData: the effect of gender on income");
    {
        let table = ds::adult_data(&ds::AdultConfig::default());
        let q = Query::from_sql(
            "SELECT Gender, avg(Income) FROM AdultData GROUP BY Gender",
            &table,
        )
        .expect("query");
        let report = HypDb::new(&table).analyze(&q).expect("analysis");
        println!("{report}");
        println!(
            "(paper: 0.11/0.30 naive becomes 0.23/0.25 total and 0.10/0.11 \
             direct; MaritalStatus carries responsibility 0.58 — the paper's \
             census-income inconsistency)"
        );
    }

    crate::report::section("Fig 3 (bottom) — StaplesData: the effect of income on price");
    {
        let table = ds::staples_data(&ds::StaplesConfig {
            rows: scale.pick(200_000, 988_871),
            ..ds::StaplesConfig::default()
        });
        let q = Query::from_sql(
            "SELECT Income, avg(Price) FROM StaplesData GROUP BY Income",
            &table,
        )
        .expect("query");
        let report = HypDb::new(&table).analyze(&q).expect("analysis");
        println!("{report}");
        println!(
            "(paper: the association is real but there is no *direct* income \
             effect — Distance is fully responsible. Note: Income's parents \
             are unorientable, so our fallback adjusts the total effect by \
             MB(Income) = {{Distance}}; the paper reports the unadjusted \
             total instead — the direct-effect verdict, which is the \
             finding, is identical. See EXPERIMENTS.md.)"
        );
    }

    crate::report::section(
        "Fig 4 (top) — CancerData: lung cancer and car accidents (ground truth known)",
    );
    {
        let table = ds::cancer_data(2_000, 17);
        let q = Query::from_sql(
            "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData GROUP BY Lung_Cancer",
            &table,
        )
        .expect("query");
        let report = HypDb::new(&table).analyze(&q).expect("analysis");
        println!("{report}");
        println!(
            "(paper: 0.60/0.77 naive; significant total, insignificant direct; \
             Fatigue dominates the mediation — all three match the Fig 7 DAG)"
        );
    }

    crate::report::section("Fig 4 (bottom) — BerkeleyData: the 1973 admission figures (real data)");
    {
        let table = ds::berkeley_data();
        let q = Query::from_sql(
            "SELECT Gender, avg(Accepted) FROM BerkeleyData GROUP BY Gender",
            &table,
        )
        .expect("query");
        let report = HypDb::new(&table)
            .with_covariates(["Department"])
            .expect("attr")
            .with_mediators(["Department"])
            .expect("attr")
            .analyze(&q)
            .expect("analysis");
        println!("{report}");
        println!(
            "(paper: 0.30/0.46 naive reverses to a small significant advantage \
             for women after conditioning on Department; top triples \
             (Male, 1, A), (Male, 1, B) — men applied to the easy departments)"
        );
    }

    run_mqo_comparison(scale);
}
