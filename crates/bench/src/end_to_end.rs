//! Figs 1, 3 and 4: the five end-to-end dataset reports, printed in the
//! paper's layout (SQL answer vs rewritten total vs rewritten direct,
//! coarse- and fine-grained explanations) — plus the PR-5 multi-query
//! comparison (batched vs call-at-a-time analyze, `BENCH_pr5.json`).

use crate::report::MdTable;
use crate::Scale;
use hypdb_core::{HypDb, HypDbConfig, OracleCache, Query};
use hypdb_datasets as ds;
use hypdb_table::Table;
use serde::Serialize;
use std::sync::Arc;

/// One timed analyze run of the PR-5 comparison.
#[derive(Debug, Clone, Serialize)]
pub struct MqoRunRecord {
    /// Dataset analyzed.
    pub dataset: String,
    /// `"batched"` (planner on) or `"call_at_a_time"` (planner off).
    pub mode: String,
    /// Wall-clock seconds for the cold (uncached) analyze.
    pub seconds: f64,
    /// Full contingency-table row scans (the number batching exists to
    /// cut; `OracleStats::table_scans`).
    pub count_scans: u64,
    /// Contingency tables served from the materialisation cache.
    pub count_cache_hits: u64,
    /// Contingency tables derived from cached supersets.
    pub marginalizations: u64,
    /// Independence tests performed.
    pub tests: u64,
    /// Statements routed through the batch planner.
    pub batched_statements: u64,
    /// Statement groups the planner formed.
    pub groups_planned: u64,
}

/// The machine-readable PR-5 report (`BENCH_pr5.json`).
#[derive(Debug, Clone, Serialize)]
pub struct MqoBenchReport {
    /// PR number this trajectory point belongs to.
    pub pr: u32,
    /// Experiment tag.
    pub experiment: String,
    /// `std::thread::available_parallelism` on the runner.
    pub available_parallelism: usize,
    /// All timed runs.
    pub runs: Vec<MqoRunRecord>,
}

fn mqo_run(dataset: &str, table: &Table, sql: &str, batched: bool) -> MqoRunRecord {
    let mut cfg = HypDbConfig::default();
    cfg.ci.batch.enabled = batched;
    let cache = Arc::new(OracleCache::new());
    let q = Query::from_sql(sql, table).expect("query");
    let db = HypDb::new(table)
        .with_config(cfg)
        .with_oracle_cache(Arc::clone(&cache));
    let (report, seconds) = crate::timed(|| db.analyze(&q).expect("analysis"));
    assert!(!report.contexts.is_empty());
    let s = cache.stats();
    MqoRunRecord {
        dataset: dataset.to_string(),
        mode: if batched { "batched" } else { "call_at_a_time" }.to_string(),
        seconds,
        count_scans: s.table_scans,
        count_cache_hits: s.count_cache_hits,
        marginalizations: s.marginalizations,
        tests: s.tests,
        batched_statements: s.batched_statements,
        groups_planned: s.groups_planned,
    }
}

/// PR-5: batched vs call-at-a-time independence testing on the two
/// ground-truth datasets. Prints the comparison, asserts the planner's
/// core win (strictly fewer full contingency scans *and* identical
/// report bytes), and writes `BENCH_pr5.json`.
fn run_mqo_comparison(scale: Scale) {
    crate::report::section(
        "PR-5 — batched multi-query independence testing vs call-at-a-time (cold analyze)",
    );
    let cases: Vec<(&str, Table, &str)> = vec![
        (
            "cancer",
            ds::cancer_data(scale.pick(2_000, 10_000), 1),
            "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData GROUP BY Lung_Cancer",
        ),
        (
            "adult",
            ds::adult_data(&ds::AdultConfig {
                rows: scale.pick(8_000, 30_000),
                seed: 1994,
            }),
            "SELECT Gender, avg(Income) FROM AdultData GROUP BY Gender",
        ),
    ];
    let mut runs: Vec<MqoRunRecord> = Vec::new();
    let mut table = MdTable::new([
        "dataset",
        "mode",
        "seconds",
        "count_scans",
        "marginalizations",
        "batched stmts",
        "groups",
    ]);
    for (name, data, sql) in &cases {
        // Byte-identity first: the planner must not move a single byte.
        let mut cfg_on = HypDbConfig::default();
        cfg_on.ci.batch.enabled = true;
        let mut cfg_off = cfg_on;
        cfg_off.ci.batch.enabled = false;
        let q = Query::from_sql(sql, data).expect("query");
        let on = HypDb::new(data)
            .with_config(cfg_on)
            .analyze(&q)
            .expect("analysis");
        let off = HypDb::new(data)
            .with_config(cfg_off)
            .analyze(&q)
            .expect("analysis");
        assert_eq!(
            on.contexts, off.contexts,
            "{name}: batching changed report content"
        );
        assert_eq!(on.covariates, off.covariates);
        assert_eq!(on.mediators, off.mediators);

        for batched in [false, true] {
            let rec = mqo_run(name, data, sql, batched);
            table.row([
                rec.dataset.clone(),
                rec.mode.clone(),
                format!("{:.3}", rec.seconds),
                rec.count_scans.to_string(),
                rec.marginalizations.to_string(),
                rec.batched_statements.to_string(),
                rec.groups_planned.to_string(),
            ]);
            runs.push(rec);
        }
        let seq = &runs[runs.len() - 2];
        let bat = &runs[runs.len() - 1];
        assert!(
            bat.count_scans < seq.count_scans,
            "{name}: batched CD must perform strictly fewer full scans \
             ({} vs {})",
            bat.count_scans,
            seq.count_scans
        );
        assert!(bat.batched_statements > 0 && bat.groups_planned > 0);
        assert_eq!(seq.batched_statements, 0);
    }
    println!("{}", table.render());

    let report = MqoBenchReport {
        pr: 5,
        experiment: "batched_vs_call_at_a_time_analyze".to_string(),
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        runs,
    };
    let json = serde_json::to_string(&report).expect("serialize");
    let path = "BENCH_pr5.json";
    std::fs::write(path, &json).expect("write BENCH_pr5.json");
    println!(
        "\n(wrote {path}; batched runs are byte-identical to call-at-a-time \
         and perform strictly fewer full contingency scans)"
    );
}

/// Runs all five analyses and prints their reports.
pub fn run(scale: Scale) {
    crate::report::section("Fig 1 — FlightData: Simpson's paradox, detected, explained, removed");
    {
        let table = ds::flight_data(&ds::FlightConfig::default());
        let q = Query::from_sql(
            "SELECT Carrier, avg(Delayed) FROM FlightData \
             WHERE Carrier IN ('AA','UA') AND Airport IN ('COS','MFE','MTJ','ROC') \
             GROUP BY Carrier",
            &table,
        )
        .expect("query");
        let report = HypDb::new(&table).analyze(&q).expect("analysis");
        println!("{report}");
        println!(
            "(paper: SQL favours AA; rewritten favours UA (total), direct \
             difference insignificant; top covariate Airport, then Year; top \
             triple (UA, ROC, delayed))"
        );
    }

    crate::report::section("Fig 3 (top) — AdultData: the effect of gender on income");
    {
        let table = ds::adult_data(&ds::AdultConfig::default());
        let q = Query::from_sql(
            "SELECT Gender, avg(Income) FROM AdultData GROUP BY Gender",
            &table,
        )
        .expect("query");
        let report = HypDb::new(&table).analyze(&q).expect("analysis");
        println!("{report}");
        println!(
            "(paper: 0.11/0.30 naive becomes 0.23/0.25 total and 0.10/0.11 \
             direct; MaritalStatus carries responsibility 0.58 — the paper's \
             census-income inconsistency)"
        );
    }

    crate::report::section("Fig 3 (bottom) — StaplesData: the effect of income on price");
    {
        let table = ds::staples_data(&ds::StaplesConfig {
            rows: scale.pick(200_000, 988_871),
            ..ds::StaplesConfig::default()
        });
        let q = Query::from_sql(
            "SELECT Income, avg(Price) FROM StaplesData GROUP BY Income",
            &table,
        )
        .expect("query");
        let report = HypDb::new(&table).analyze(&q).expect("analysis");
        println!("{report}");
        println!(
            "(paper: the association is real but there is no *direct* income \
             effect — Distance is fully responsible. Note: Income's parents \
             are unorientable, so our fallback adjusts the total effect by \
             MB(Income) = {{Distance}}; the paper reports the unadjusted \
             total instead — the direct-effect verdict, which is the \
             finding, is identical. See EXPERIMENTS.md.)"
        );
    }

    crate::report::section(
        "Fig 4 (top) — CancerData: lung cancer and car accidents (ground truth known)",
    );
    {
        let table = ds::cancer_data(2_000, 17);
        let q = Query::from_sql(
            "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData GROUP BY Lung_Cancer",
            &table,
        )
        .expect("query");
        let report = HypDb::new(&table).analyze(&q).expect("analysis");
        println!("{report}");
        println!(
            "(paper: 0.60/0.77 naive; significant total, insignificant direct; \
             Fatigue dominates the mediation — all three match the Fig 7 DAG)"
        );
    }

    crate::report::section("Fig 4 (bottom) — BerkeleyData: the 1973 admission figures (real data)");
    {
        let table = ds::berkeley_data();
        let q = Query::from_sql(
            "SELECT Gender, avg(Accepted) FROM BerkeleyData GROUP BY Gender",
            &table,
        )
        .expect("query");
        let report = HypDb::new(&table)
            .with_covariates(["Department"])
            .expect("attr")
            .with_mediators(["Department"])
            .expect("attr")
            .analyze(&q)
            .expect("analysis");
        println!("{report}");
        println!(
            "(paper: 0.30/0.46 naive reverses to a small significant advantage \
             for women after conditioning on Department; top triples \
             (Male, 1, A), (Male, 1, B) — men applied to the easy departments)"
        );
    }

    run_mqo_comparison(scale);
}
