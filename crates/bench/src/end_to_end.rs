//! Figs 1, 3 and 4: the five end-to-end dataset reports, printed in the
//! paper's layout (SQL answer vs rewritten total vs rewritten direct,
//! coarse- and fine-grained explanations).

use crate::Scale;
use hypdb_core::{HypDb, Query};
use hypdb_datasets as ds;

/// Runs all five analyses and prints their reports.
pub fn run(scale: Scale) {
    crate::report::section("Fig 1 — FlightData: Simpson's paradox, detected, explained, removed");
    {
        let table = ds::flight_data(&ds::FlightConfig::default());
        let q = Query::from_sql(
            "SELECT Carrier, avg(Delayed) FROM FlightData \
             WHERE Carrier IN ('AA','UA') AND Airport IN ('COS','MFE','MTJ','ROC') \
             GROUP BY Carrier",
            &table,
        )
        .expect("query");
        let report = HypDb::new(&table).analyze(&q).expect("analysis");
        println!("{report}");
        println!(
            "(paper: SQL favours AA; rewritten favours UA (total), direct \
             difference insignificant; top covariate Airport, then Year; top \
             triple (UA, ROC, delayed))"
        );
    }

    crate::report::section("Fig 3 (top) — AdultData: the effect of gender on income");
    {
        let table = ds::adult_data(&ds::AdultConfig::default());
        let q = Query::from_sql(
            "SELECT Gender, avg(Income) FROM AdultData GROUP BY Gender",
            &table,
        )
        .expect("query");
        let report = HypDb::new(&table).analyze(&q).expect("analysis");
        println!("{report}");
        println!(
            "(paper: 0.11/0.30 naive becomes 0.23/0.25 total and 0.10/0.11 \
             direct; MaritalStatus carries responsibility 0.58 — the paper's \
             census-income inconsistency)"
        );
    }

    crate::report::section("Fig 3 (bottom) — StaplesData: the effect of income on price");
    {
        let table = ds::staples_data(&ds::StaplesConfig {
            rows: scale.pick(200_000, 988_871),
            ..ds::StaplesConfig::default()
        });
        let q = Query::from_sql(
            "SELECT Income, avg(Price) FROM StaplesData GROUP BY Income",
            &table,
        )
        .expect("query");
        let report = HypDb::new(&table).analyze(&q).expect("analysis");
        println!("{report}");
        println!(
            "(paper: the association is real but there is no *direct* income \
             effect — Distance is fully responsible. Note: Income's parents \
             are unorientable, so our fallback adjusts the total effect by \
             MB(Income) = {{Distance}}; the paper reports the unadjusted \
             total instead — the direct-effect verdict, which is the \
             finding, is identical. See EXPERIMENTS.md.)"
        );
    }

    crate::report::section(
        "Fig 4 (top) — CancerData: lung cancer and car accidents (ground truth known)",
    );
    {
        let table = ds::cancer_data(2_000, 17);
        let q = Query::from_sql(
            "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData GROUP BY Lung_Cancer",
            &table,
        )
        .expect("query");
        let report = HypDb::new(&table).analyze(&q).expect("analysis");
        println!("{report}");
        println!(
            "(paper: 0.60/0.77 naive; significant total, insignificant direct; \
             Fatigue dominates the mediation — all three match the Fig 7 DAG)"
        );
    }

    crate::report::section("Fig 4 (bottom) — BerkeleyData: the 1973 admission figures (real data)");
    {
        let table = ds::berkeley_data();
        let q = Query::from_sql(
            "SELECT Gender, avg(Accepted) FROM BerkeleyData GROUP BY Gender",
            &table,
        )
        .expect("query");
        let report = HypDb::new(&table)
            .with_covariates(["Department"])
            .expect("attr")
            .with_mediators(["Department"])
            .expect("attr")
            .analyze(&q)
            .expect("analysis");
        println!("{report}");
        println!(
            "(paper: 0.30/0.46 naive reverses to a small significant advantage \
             for women after conditioning on Department; top triples \
             (Male, 1, A), (Male, 1, B) — men applied to the easy departments)"
        );
    }
}
