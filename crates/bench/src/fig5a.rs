//! Fig 5(a): how often does a random SQL query mislead? 1 000 random
//! carrier-comparison queries on FlightData, rewritten w.r.t. the
//! potential covariates {Airport, Day, Month, DayOfWeek} (§7.2).
//!
//! Classification of each query whose naive answer is significant:
//! * **insignificant after rewrite** — the difference was pure bias,
//! * **trend reversed** — the rewritten difference is significant with
//!   the opposite sign (a Simpson reversal),
//! * **confirmed** — same sign, still significant.

use crate::report::{pct, MdTable};
use crate::Scale;
use hypdb_core::effect::adjusted_averages;
use hypdb_datasets::flight::{flight_data, FlightConfig, AIRPORTS, CARRIERS};
use hypdb_stats::independence::{hymit, MitConfig};
use hypdb_table::contingency::Stratified;
use hypdb_table::{AttrId, Predicate, Table};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use serde::Serialize;

/// One random query's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct QueryOutcome {
    /// Compared carriers.
    pub carriers: (String, String),
    /// Airports in the WHERE clause.
    pub airports: Vec<String>,
    /// Naive difference and its significance.
    pub naive_diff: f64,
    /// p-value of the naive difference.
    pub naive_p: f64,
    /// Adjusted difference and its significance.
    pub adjusted_diff: f64,
    /// p-value of the adjusted difference.
    pub adjusted_p: f64,
}

/// Classification counts.
#[derive(Debug, Default, Clone, Copy, Serialize)]
pub struct Fig5aSummary {
    /// Queries attempted.
    pub total: usize,
    /// Naive answer significant.
    pub naive_significant: usize,
    /// …of which became insignificant after rewriting.
    pub became_insignificant: usize,
    /// …of which reversed sign (still significant).
    pub reversed: usize,
    /// …of which were confirmed.
    pub confirmed: usize,
}

/// Runs the sweep, returning per-query outcomes and the summary.
pub fn sweep(
    table: &Table,
    queries: usize,
    alpha: f64,
    seed: u64,
) -> (Vec<QueryOutcome>, Fig5aSummary) {
    let mut rng = StdRng::seed_from_u64(seed);
    let carrier = table.attr("Carrier").expect("attr");
    let delayed = table.attr("Delayed").expect("attr");
    // The paper adjusts for {Airport, Day, Month, DayOfWeek} on 50M
    // rows; at laptop scale Day (28 values) shatters the blocks, so we
    // swap it for Year — the same kind of mild secondary covariate.
    let z: Vec<AttrId> = ["Airport", "Year", "Month", "DayOfWeek"]
        .iter()
        .map(|n| table.attr(n).expect("attr"))
        .collect();
    let mit = MitConfig::default();

    let mut outcomes = Vec::new();
    let mut summary = Fig5aSummary::default();
    while outcomes.len() < queries {
        // Random pair of carriers + random airport subset.
        let mut cs: Vec<&str> = CARRIERS.to_vec();
        cs.shuffle(&mut rng);
        let (c0, c1) = (cs[0], cs[1]);
        let k = rng.gen_range(2..=AIRPORTS.len());
        let mut aps: Vec<&str> = AIRPORTS.to_vec();
        aps.shuffle(&mut rng);
        let airports: Vec<&str> = aps[..k].to_vec();

        let pred = Predicate::and([
            Predicate::is_in(table, "Carrier", [c0, c1]).expect("attr"),
            Predicate::is_in(table, "Airport", airports.iter().copied()).expect("attr"),
        ]);
        let rows = pred.select(table);
        if rows.len() < 200 {
            continue;
        }
        let levels: Vec<u32> = {
            let g = hypdb_table::groupby::group_counts(table, &rows, &[carrier]);
            g.iter().map(|r| r.key[0]).collect()
        };
        if levels.len() != 2 {
            continue;
        }
        summary.total += 1;

        // Naive difference + significance (I(T;Y) = 0 test).
        let naive = adjusted_averages(table, &rows, carrier, &levels, &[delayed], &[], &mit, seed)
            .expect("naive");
        let naive_diff = naive.diff.as_ref().expect("two levels")[0];
        let mut r2 = StdRng::seed_from_u64(seed ^ outcomes.len() as u64);
        let naive_p = hymit(
            &Stratified::build(table, &rows, carrier, delayed, &[]),
            &mit,
            &mut r2,
        )
        .p_value;

        // Rewritten difference + significance (I(T;Y|Z) = 0 test).
        let adj = adjusted_averages(table, &rows, carrier, &levels, &[delayed], &z, &mit, seed)
            .expect("adjusted");
        let adjusted_diff = adj.diff.as_ref().expect("two levels")[0];
        let adjusted_p = adj.significance[0].p_value;

        if naive_p <= alpha {
            summary.naive_significant += 1;
            if adjusted_p > alpha {
                summary.became_insignificant += 1;
            } else if naive_diff.signum() != adjusted_diff.signum() {
                summary.reversed += 1;
            } else {
                summary.confirmed += 1;
            }
        }
        outcomes.push(QueryOutcome {
            carriers: (c0.to_string(), c1.to_string()),
            airports: airports.iter().map(|s| s.to_string()).collect(),
            naive_diff,
            naive_p,
            adjusted_diff,
            adjusted_p,
        });
    }
    (outcomes, summary)
}

/// Runs the experiment and prints the summary.
pub fn run(scale: Scale) {
    crate::report::section("Fig 5(a) — the effect of query rewriting on 1 000 random queries");
    let queries = scale.pick(300, 1_000);
    // The paper runs this on 50M rows; we use the largest table that
    // keeps the sweep interactive, so the adjustment blocks stay
    // populated.
    let table = flight_data(&FlightConfig {
        rows: scale.pick(150_000, 600_000),
        total_attrs: 20,
        ..FlightConfig::default()
    });
    let (outcomes, s) = sweep(&table, queries, 0.01, 0x5A);
    let mut t = MdTable::new(["metric", "count", "fraction of significant"]);
    let frac = |c: usize| {
        if s.naive_significant == 0 {
            "-".to_string()
        } else {
            pct(c as f64 / s.naive_significant as f64)
        }
    };
    t.row(["random queries".to_string(), s.total.to_string(), "".into()]);
    t.row([
        "naive answer significant".to_string(),
        s.naive_significant.to_string(),
        pct(s.naive_significant as f64 / s.total.max(1) as f64),
    ]);
    t.row([
        "became insignificant after rewrite".to_string(),
        s.became_insignificant.to_string(),
        frac(s.became_insignificant),
    ]);
    t.row([
        "trend reversed after rewrite".to_string(),
        s.reversed.to_string(),
        frac(s.reversed),
    ]);
    t.row([
        "confirmed by rewrite".to_string(),
        s.confirmed.to_string(),
        frac(s.confirmed),
    ]);
    t.print();
    println!(
        "\n(paper, for shape: >10% of significant queries became insignificant, \
         ~20% reversed; any off-diagonal point in the scatter = rewriting mattered)"
    );
    // A few example scatter points.
    println!("\nsample scatter rows (naive diff -> adjusted diff):");
    for o in outcomes.iter().take(8) {
        println!(
            "  {}-{} @ {:?}: {:+.3} (p={:.3}) -> {:+.3} (p={:.3})",
            o.carriers.0,
            o.carriers.1,
            o.airports,
            o.naive_diff,
            o.naive_p,
            o.adjusted_diff,
            o.adjusted_p
        );
    }
}
