//! Figs 5(b,c,d) and 6(a): parent-recovery quality of the CD algorithm
//! against the baseline CDD methods, plus the number of independence
//! tests each conducts.

use crate::report::{f3, MdTable};
use crate::Scale;
use hypdb_causal::cd::{discover_parents, CdConfig};
use hypdb_causal::eval::{parent_f1, ParentScore};
use hypdb_causal::fgs::{FgsConfig, FgsLearner};
use hypdb_causal::hc::{HcConfig, HillClimb, Score};
use hypdb_causal::oracle::{CiConfig, CiOracle, DataOracle, IndependenceTestKind};
use hypdb_datasets::random_data::{random_data, RandomDataConfig, RandomDataset};
use hypdb_table::AttrId;

/// The eight discovery methods of Fig 5(b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// CD with the HyMIT hybrid test.
    CdHyMit,
    /// CD with the MIT permutation test.
    CdMit,
    /// CD with the asymptotic χ² test.
    CdChi2,
    /// Full Grow–Shrink structure learning (χ²).
    Fgs,
    /// IAMB-based structure learning (χ²).
    Iamb,
    /// Hill climbing, BIC score.
    HcBic,
    /// Hill climbing, AIC score.
    HcAic,
    /// Hill climbing, BDeu score.
    HcBdeu,
}

impl Method {
    /// All methods in Fig 5(b)'s legend order.
    pub fn all() -> [Method; 8] {
        [
            Method::CdHyMit,
            Method::CdMit,
            Method::CdChi2,
            Method::Iamb,
            Method::Fgs,
            Method::HcBdeu,
            Method::HcAic,
            Method::HcBic,
        ]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Method::CdHyMit => "CD(HyMIT)",
            Method::CdMit => "CD(MIT)",
            Method::CdChi2 => "CD(chi2)",
            Method::Fgs => "FGS(chi2)",
            Method::Iamb => "IAMB(chi2)",
            Method::HcBic => "HC(BIC)",
            Method::HcAic => "HC(AIC)",
            Method::HcBdeu => "HC(BDe)",
        }
    }
}

fn ci_config(kind: IndependenceTestKind) -> CiConfig {
    CiConfig {
        kind,
        ..CiConfig::default()
    }
}

/// Runs one method on one dataset; returns per-node predicted parents
/// and the number of independence tests performed (0 for score-based).
pub fn predict_parents(method: Method, d: &RandomDataset) -> (Vec<(usize, Vec<usize>)>, u64) {
    let table = &d.table;
    let n = table.nattrs();
    match method {
        Method::CdHyMit | Method::CdMit | Method::CdChi2 => {
            let kind = match method {
                Method::CdHyMit => IndependenceTestKind::HyMit,
                Method::CdMit => IndependenceTestKind::MitSampled { max_groups: 64 },
                _ => IndependenceTestKind::ChiSquared,
            };
            let oracle = DataOracle::over_all_attrs(table, table.all_rows(), ci_config(kind));
            let preds: Vec<(usize, Vec<usize>)> = (0..n)
                .map(|t| (t, discover_parents(&oracle, t, CdConfig::default()).parents))
                .collect();
            (preds, oracle.stats().tests)
        }
        Method::Fgs | Method::Iamb => {
            let oracle = DataOracle::over_all_attrs(
                table,
                table.all_rows(),
                ci_config(IndependenceTestKind::ChiSquared),
            );
            let blanket = if method == Method::Fgs {
                hypdb_causal::cd::BlanketAlgorithm::GrowShrink
            } else {
                hypdb_causal::cd::BlanketAlgorithm::Iamb
            };
            let pdag = FgsLearner::new(FgsConfig {
                blanket,
                ..FgsConfig::default()
            })
            .learn(&oracle);
            let preds = (0..n).map(|v| (v, pdag.parents(v))).collect();
            (preds, oracle.stats().tests)
        }
        Method::HcBic | Method::HcAic | Method::HcBdeu => {
            let score = match method {
                Method::HcBic => Score::Bic,
                Method::HcAic => Score::Aic,
                _ => Score::BDeu { ess: 5.0 },
            };
            let vars: Vec<AttrId> = table.schema().attr_ids().collect();
            let mut hc = HillClimb::new(
                table,
                table.all_rows(),
                vars,
                HcConfig {
                    score,
                    ..HcConfig::default()
                },
            );
            let dag = hc.learn();
            let preds = (0..n).map(|v| (v, dag.parent_set(v))).collect();
            (preds, 0)
        }
    }
}

/// Scores one method across several dataset seeds (micro-averaged F1).
pub fn score_method(
    method: Method,
    base: &RandomDataConfig,
    seeds: &[u64],
    min_parents: usize,
) -> (ParentScore, f64) {
    let mut total = ParentScore::default();
    let mut tests_per_node = 0.0;
    for &seed in seeds {
        let d = random_data(&RandomDataConfig { seed, ..*base });
        let (preds, tests) = predict_parents(method, &d);
        let filter = |v: usize| d.dag.parent_set(v).len() >= min_parents;
        let score = if min_parents > 0 {
            parent_f1(&d.dag, &preds, Some(&filter))
        } else {
            parent_f1(&d.dag, &preds, None)
        };
        total.merge(score);
        tests_per_node += tests as f64 / d.dag.len() as f64;
    }
    (total, tests_per_node / seeds.len() as f64)
}

/// Fig 5(b): F1 vs sample size, all methods, all nodes.
pub fn run_fig5b(scale: Scale) {
    crate::report::section("Fig 5(b) — parent-recovery F1 vs sample size (all nodes)");
    run_quality_sweep(scale, 0);
    println!(
        "\n(paper, for shape: CD variants lead; score-based HC trails on \
         categorical data; all methods improve with sample size)"
    );
}

/// Fig 5(c): restricted to nodes with ≥ 2 parents.
pub fn run_fig5c(scale: Scale) {
    crate::report::section(
        "Fig 5(c) — parent-recovery F1 vs sample size (nodes with >= 2 parents)",
    );
    run_quality_sweep(scale, 2);
    println!(
        "\n(paper, for shape: the CD gap widens on multi-parent nodes — \
         exactly the nodes its collider search is designed for)"
    );
}

fn run_quality_sweep(scale: Scale, min_parents: usize) {
    let sizes: Vec<usize> = scale.pick(
        vec![10_000, 30_000, 100_000],
        vec![10_000, 30_000, 100_000, 300_000, 1_000_000],
    );
    let seeds: Vec<u64> = scale.pick(vec![11, 22, 33, 44], vec![11, 22, 33, 44, 55, 66, 77]);
    let mut headers = vec!["rows".to_string()];
    headers.extend(Method::all().iter().map(|m| m.label().to_string()));
    let mut t = MdTable::new(headers);
    for &rows in &sizes {
        // The paper's RandomData DAGs are sparse: "the expected number
        // of edges was in the range 3-5" (§7.1) — sparse graphs are
        // where the non-adjacent-parents assumption usually holds.
        let base = RandomDataConfig {
            nodes: scale.pick(8, 16),
            expected_edges: scale.pick(5.0, 9.0),
            rows,
            min_categories: 2,
            max_categories: 6,
            ..RandomDataConfig::default()
        };
        let mut cells = vec![rows.to_string()];
        for m in Method::all() {
            let (score, _) = score_method(m, &base, &seeds, min_parents);
            cells.push(f3(score.f1()));
        }
        t.row(cells);
    }
    t.print();
}

/// Fig 5(d): F1 vs number of categories (fixed sample size).
pub fn run_fig5d(scale: Scale) {
    crate::report::section("Fig 5(d) — parent-recovery F1 vs number of categories");
    let seeds: Vec<u64> = scale.pick(vec![11, 22, 33], vec![11, 22, 33, 44, 55]);
    let rows = scale.pick(30_000, 50_000);
    let bands: Vec<(usize, usize)> = vec![(2, 4), (5, 8), (9, 12), (13, 16), (17, 20)];
    let mut headers = vec!["categories".to_string()];
    headers.extend(Method::all().iter().map(|m| m.label().to_string()));
    let mut t = MdTable::new(headers);
    for (lo, hi) in bands {
        let base = RandomDataConfig {
            nodes: 8,
            expected_edges: 5.0,
            rows,
            min_categories: lo,
            max_categories: hi,
            ..RandomDataConfig::default()
        };
        let mut cells = vec![format!("{lo}-{hi}")];
        for m in Method::all() {
            let (score, _) = score_method(m, &base, &seeds, 2);
            cells.push(f3(score.f1()));
        }
        t.row(cells);
    }
    t.print();
    println!(
        "\n(paper, for shape: more categories = sparser contingency tables; \
         permutation-based CD degrades most gracefully, χ²/score methods fall off)"
    );
}

/// Fig 6(a): number of independence tests, one CD query vs learning the
/// whole DAG with FGS.
pub fn run_fig6a(scale: Scale) {
    crate::report::section("Fig 6(a) — independence tests: one CD target vs the whole DAG (FGS)");
    let sizes: Vec<usize> = scale.pick(
        vec![10_000, 30_000, 100_000],
        vec![10_000, 30_000, 50_000, 100_000, 500_000],
    );
    let seeds: Vec<u64> = scale.pick(vec![11, 22], vec![11, 22, 33, 44]);
    let mut t = MdTable::new(["rows", "CD single target", "FGS total", "FGS per node"]);
    for &rows in &sizes {
        let base = RandomDataConfig {
            nodes: 8,
            expected_edges: 5.0,
            rows,
            min_categories: 2,
            max_categories: 4,
            ..RandomDataConfig::default()
        };
        // CD: cost of ONE query-time discovery (averaged over targets
        // and seeds, fresh oracle each time — the OLAP setting).
        let mut cd_single = 0.0;
        let mut cd_runs = 0u32;
        for &seed in &seeds {
            let d = random_data(&RandomDataConfig { seed, ..base });
            for target in 0..d.dag.len() {
                let oracle = DataOracle::over_all_attrs(
                    &d.table,
                    d.table.all_rows(),
                    ci_config(IndependenceTestKind::ChiSquared),
                );
                discover_parents(&oracle, target, CdConfig::default());
                cd_single += oracle.stats().tests as f64;
                cd_runs += 1;
            }
        }
        cd_single /= cd_runs as f64;
        // FGS: one structure-learning run covers all nodes.
        let mut fgs_total = 0.0;
        for &seed in &seeds {
            let d = random_data(&RandomDataConfig { seed, ..base });
            let oracle = DataOracle::over_all_attrs(
                &d.table,
                d.table.all_rows(),
                ci_config(IndependenceTestKind::ChiSquared),
            );
            FgsLearner::default().learn(&oracle);
            fgs_total += oracle.stats().tests as f64;
        }
        fgs_total /= seeds.len() as f64;
        t.row([
            rows.to_string(),
            format!("{cd_single:.0}"),
            format!("{fgs_total:.0}"),
            format!("{:.0}", fgs_total / base.nodes as f64),
        ]);
    }
    t.print();
    println!(
        "\n(paper, for shape: answering one query (one CD run) costs far fewer \
         tests than learning the entire DAG — and is in the same band as FGS's \
         *amortised* per-node cost, without needing the other n−1 nodes)"
    );
}
