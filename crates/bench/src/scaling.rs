//! PR-2 scaling experiment: wall-clock of the end-to-end pipeline and
//! its hot kernels at 1 worker versus the default worker count.
//!
//! Prints a markdown table and writes a machine-readable
//! `BENCH_pr2.json` next to the working directory so later PRs can
//! track the perf trajectory. Thread counts are switched at runtime
//! ([`hypdb_exec::set_global_threads`]); the determinism layer
//! guarantees the *outputs* of every run are identical — only the
//! wall clock may differ.

use crate::report::MdTable;
use crate::Scale;
use hypdb_core::{HypDb, Query, Timings};
use hypdb_datasets as ds;
use hypdb_stats::independence::{mit, Strata};
use hypdb_stats::patefield::sample_table;
use hypdb_table::contingency::ContingencyTable;
use hypdb_table::AttrId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// One timed run.
#[derive(Debug, Clone, Serialize)]
pub struct RunRecord {
    /// Experiment name (`flight_pipeline`, `mit_kernel`, …).
    pub experiment: String,
    /// Worker count the run used.
    pub threads: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Per-phase pipeline timings (pipeline experiments only).
    pub phases: Option<Timings>,
}

/// Speedup of an experiment at a thread count, relative to 1 thread.
#[derive(Debug, Clone, Serialize)]
pub struct SpeedupRecord {
    /// Experiment name.
    pub experiment: String,
    /// Worker count.
    pub threads: usize,
    /// `seconds(1 thread) / seconds(threads)`.
    pub speedup_vs_1_thread: f64,
}

/// The whole machine-readable report (`BENCH_pr2.json`).
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// PR number this trajectory point belongs to.
    pub pr: u32,
    /// `std::thread::available_parallelism` on the runner.
    pub available_parallelism: usize,
    /// Worker counts measured.
    pub thread_counts: Vec<usize>,
    /// All timed runs.
    pub runs: Vec<RunRecord>,
    /// Speedups relative to the 1-thread runs.
    pub speedups: Vec<SpeedupRecord>,
}

fn thread_counts() -> Vec<usize> {
    let default = hypdb_exec::global_threads();
    if default > 1 {
        vec![1, default]
    } else {
        // Single-core runner: still exercise the threaded code path so
        // the record shows it was measured (speedup ≈ 1 is expected).
        vec![1, 2]
    }
}

/// Runs the scaling sweep, prints the table, writes `BENCH_pr2.json`.
pub fn run(scale: Scale) {
    crate::report::section("PR-2 scaling — end-to-end pipeline & kernels vs worker count");
    let counts = thread_counts();
    let mut runs: Vec<RunRecord> = Vec::new();

    // --- End-to-end pipelines (the Table 1 workloads). ---
    let flight = ds::flight_data(&ds::FlightConfig {
        rows: scale.pick(20_000, 43_853),
        ..ds::FlightConfig::default()
    });
    let flight_q = Query::from_sql(
        "SELECT Carrier, avg(Delayed) FROM FlightData \
         WHERE Carrier IN ('AA','UA') AND Airport IN ('COS','MFE','MTJ','ROC') \
         GROUP BY Carrier",
        &flight,
    )
    .expect("query");
    let adult = ds::adult_data(&ds::AdultConfig {
        rows: scale.pick(16_000, 48_842),
        seed: 1994,
    });
    let adult_q = Query::from_sql(
        "SELECT Gender, avg(Income) FROM AdultData GROUP BY Gender",
        &adult,
    )
    .expect("query");
    for (name, table, query) in [
        ("flight_pipeline", &flight, &flight_q),
        ("adult_pipeline", &adult, &adult_q),
    ] {
        for &t in &counts {
            let (report, secs) =
                crate::timed_at_threads(t, || HypDb::new(table).analyze(query).expect("analysis"));
            runs.push(RunRecord {
                experiment: name.to_string(),
                threads: t,
                seconds: secs,
                phases: Some(report.timings),
            });
        }
    }

    // --- MIT permutation kernel (the §5 hot loop). ---
    let strata = {
        let mut rng = StdRng::seed_from_u64(0x5CA1E);
        let groups: Vec<_> = (0..64)
            .map(|_| sample_table(&mut rng, &[60, 80, 60], &[70, 60, 70]))
            .collect();
        Strata::new(groups)
    };
    let m = scale.pick(4_000, 20_000);
    for &t in &counts {
        let (_, secs) =
            crate::timed_at_threads(t, || mit(&strata, m, &mut StdRng::seed_from_u64(1)));
        runs.push(RunRecord {
            experiment: "mit_kernel".to_string(),
            threads: t,
            seconds: secs,
            phases: None,
        });
    }

    // --- Contingency-table build (the group-by counting kernel). ---
    let big = ds::adult_data(&ds::AdultConfig {
        rows: scale.pick(200_000, 1_000_000),
        seed: 7,
    });
    let attrs: Vec<AttrId> = big.schema().attr_ids().take(4).collect();
    for &t in &counts {
        let (ct, secs) = crate::timed_at_threads(t, || {
            ContingencyTable::from_table(&big, &big.all_rows(), &attrs)
        });
        assert_eq!(ct.total() as usize, big.all_rows().len());
        runs.push(RunRecord {
            experiment: "contingency_build".to_string(),
            threads: t,
            seconds: secs,
            phases: None,
        });
    }

    // --- Speedups + rendering. ---
    let mut speedups = Vec::new();
    let mut table = MdTable::new(["experiment", "threads", "seconds", "speedup vs 1 thread"]);
    for run in &runs {
        let base = runs
            .iter()
            .find(|r| r.experiment == run.experiment && r.threads == 1)
            .map(|r| r.seconds)
            .unwrap_or(run.seconds);
        let speedup = if run.seconds > 0.0 {
            base / run.seconds
        } else {
            1.0
        };
        if run.threads != 1 {
            speedups.push(SpeedupRecord {
                experiment: run.experiment.clone(),
                threads: run.threads,
                speedup_vs_1_thread: speedup,
            });
        }
        table.row([
            run.experiment.clone(),
            run.threads.to_string(),
            format!("{:.3}", run.seconds),
            format!("{speedup:.2}x"),
        ]);
    }
    println!("{}", table.render());

    let report = BenchReport {
        pr: 2,
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        thread_counts: counts,
        runs,
        speedups,
    };
    let json = serde_json::to_string(&report).expect("serialize");
    let path = "BENCH_pr2.json";
    std::fs::write(path, &json).expect("write BENCH_pr2.json");
    println!("\n(wrote {path}; on a single-core runner speedups are expected to be ~1.0)");
}
