//! Fig 6(c), Fig 6(d) and Fig 8(b): efficacy of the §6 optimisations —
//! entropy caching, contingency-table materialisation, and precomputed
//! data cubes.

use crate::report::MdTable;
use crate::{timed, Scale};
use hypdb_causal::cd::{discover_parents, CdConfig};
use hypdb_causal::oracle::{CiConfig, DataOracle, IndependenceTestKind};
use hypdb_datasets::random_data::{random_data, RandomDataConfig};
use hypdb_table::contingency::ContingencyTable;
use hypdb_table::cube::DataCube;
use hypdb_table::AttrId;

/// Fig 6(c): CD runtime under the four cache configurations, plus the
/// warm-cache floor ("precomputed entropies").
pub fn run_fig6c(scale: Scale) {
    crate::report::section("Fig 6(c) — efficacy of entropy caching & contingency-table materialisation (CD runtime, seconds)");
    let sizes: Vec<usize> = scale.pick(
        vec![10_000, 50_000, 150_000],
        vec![10_000, 50_000, 150_000, 500_000, 1_500_000],
    );
    let configs: [(&str, bool, bool); 4] = [
        ("no caching, no materialisation", false, false),
        ("caching only", true, false),
        ("materialisation only", false, true),
        ("both", true, true),
    ];
    let mut t = MdTable::new([
        "rows",
        "plain",
        "+caching",
        "+materialisation",
        "+both",
        "warm (precomputed entropies)",
    ]);
    for &rows in &sizes {
        let d = random_data(&RandomDataConfig {
            nodes: 8,
            expected_edges: 12.0,
            rows,
            min_categories: 2,
            max_categories: 5,
            seed: 0x6C,
            ..RandomDataConfig::default()
        });
        let mut cells = vec![rows.to_string()];
        let mut warm_secs = 0.0;
        for (_, cache, mat) in configs {
            let cfg = CiConfig {
                kind: IndependenceTestKind::ChiSquared,
                cache_entropies: cache,
                materialize: mat,
                ..CiConfig::default()
            };
            let oracle = DataOracle::over_all_attrs(&d.table, d.table.all_rows(), cfg);
            let (_, secs) = timed(|| discover_parents(&oracle, 0, CdConfig::default()));
            cells.push(format!("{secs:.3}"));
            if cache && mat {
                // Warm pass: every entropy/count already cached.
                let (_, w) = timed(|| discover_parents(&oracle, 0, CdConfig::default()));
                warm_secs = w;
            }
        }
        cells.push(format!("{warm_secs:.3}"));
        t.row(cells);
    }
    t.print();
    println!(
        "\n(paper, for shape: both optimisations help and compose; the gap to \
         the warm run shows entropy computation dominates CD's cost)"
    );
}

/// The cube workload: `count(*) GROUP BY S` for every non-empty subset
/// `S` of at most `max_width` attributes.
fn subset_workload(nattrs: usize, max_width: usize) -> Vec<Vec<AttrId>> {
    let ids: Vec<AttrId> = (0..nattrs as u32).map(AttrId).collect();
    hypdb_causal::subsets::subsets_ascending(&ids, max_width)
        .into_iter()
        .filter(|s| !s.is_empty())
        .collect()
}

fn time_cube_workload(rows: usize, attrs: usize, seed: u64) -> (f64, f64) {
    let d = random_data(&RandomDataConfig {
        nodes: attrs,
        expected_edges: attrs as f64,
        rows,
        min_categories: 2,
        max_categories: 2, // binary, like the paper's cube experiment
        seed,
        ..RandomDataConfig::default()
    });
    let table = &d.table;
    let all: Vec<AttrId> = table.schema().attr_ids().collect();
    let workload = subset_workload(attrs, 3);
    // No cube: every aggregate scans the base table.
    let (_, cold) = timed(|| {
        let mut checksum = 0u64;
        for subset in &workload {
            let ct = ContingencyTable::from_table(table, &table.all_rows(), subset);
            checksum ^= ct.support();
        }
        checksum
    });
    // Cube: materialise the joint once, serve marginals.
    let (_, cubed) = timed(|| {
        let cube = DataCube::build(table, &table.all_rows(), &all, 12).expect("cube");
        let mut checksum = 0u64;
        for subset in &workload {
            checksum ^= cube.counts_for(subset).expect("covered").support();
        }
        checksum
    });
    (cold, cubed)
}

/// Fig 6(d): cube vs no cube, varying input size (binary attributes).
pub fn run_fig6d(scale: Scale) {
    crate::report::section("Fig 6(d) — data-cube benefit vs input size (seconds, 8 binary attrs, all <=3-way aggregates)");
    let sizes: Vec<usize> = scale.pick(
        vec![100_000, 300_000, 1_000_000],
        vec![100_000, 300_000, 1_000_000, 3_000_000, 10_000_000],
    );
    let mut t = MdTable::new(["rows", "no cube", "cube (build + queries)", "speedup"]);
    for &rows in &sizes {
        let (cold, cubed) = time_cube_workload(rows, 8, 0x6D);
        t.row([
            rows.to_string(),
            format!("{cold:.3}"),
            format!("{cubed:.3}"),
            format!("{:.1}x", cold / cubed.max(1e-9)),
        ]);
    }
    t.print();
    println!(
        "\n(paper, for shape: the cube advantage grows with input size — the \
         cube summarises the data once, after which aggregates no longer touch \
         the raw rows)"
    );
}

/// Fig 8(b): cube vs no cube, varying attribute count at fixed size.
pub fn run_fig8b(scale: Scale) {
    crate::report::section("Fig 8(b) — data-cube benefit vs number of attributes (seconds)");
    let rows = scale.pick(200_000, 1_000_000);
    let mut t = MdTable::new(["attrs", "no cube", "cube (build + queries)", "speedup"]);
    for attrs in [8usize, 10, 12] {
        let (cold, cubed) = time_cube_workload(rows, attrs, 0x8B);
        t.row([
            attrs.to_string(),
            format!("{cold:.3}"),
            format!("{cubed:.3}"),
            format!("{:.1}x", cold / cubed.max(1e-9)),
        ]);
    }
    t.print();
    println!(
        "\n(paper, for shape: the benefit persists as width grows — the cube's \
         12-attribute limit, not its speed, is what binds; rows = {rows})"
    );
}
