//! Markdown-style result tables, printed to stdout so runs can be
//! teed straight into EXPERIMENTS.md.

/// A simple column-aligned markdown table.
pub struct MdTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MdTable {
    /// New table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        MdTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (stringified cells).
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        let _ = ncols;
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Section header helper.
pub fn section(title: &str) {
    println!("\n## {title}\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = MdTable::new(["name", "value"]);
        t.row(["a", "1"]).row(["long-name", "2.5"]);
        let s = t.render();
        assert!(s.contains("| name      | value |"));
        assert!(s.contains("|-----------|-------|"));
        assert!(s.contains("| long-name | 2.5   |"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        MdTable::new(["a", "b"]).row(["only-one"]);
    }
}
