//! Criterion benches behind Fig 6(d) / Fig 8(b): answering group-by
//! count workloads with and without a materialised data cube.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hypdb_causal::subsets::subsets_ascending;
use hypdb_datasets::random_data::{random_data, RandomDataConfig};
use hypdb_table::contingency::ContingencyTable;
use hypdb_table::cube::DataCube;
use hypdb_table::{AttrId, Table};

fn binary_table(rows: usize, attrs: usize) -> Table {
    random_data(&RandomDataConfig {
        nodes: attrs,
        expected_edges: attrs as f64,
        rows,
        min_categories: 2,
        max_categories: 2,
        seed: 0xC0BE,
        ..RandomDataConfig::default()
    })
    .table
}

fn workload(attrs: usize) -> Vec<Vec<AttrId>> {
    let ids: Vec<AttrId> = (0..attrs as u32).map(AttrId).collect();
    subsets_ascending(&ids, 3)
        .into_iter()
        .filter(|s| !s.is_empty())
        .collect()
}

fn bench_cube(c: &mut Criterion) {
    let mut group = c.benchmark_group("cube_workload");
    group.sample_size(10);
    for rows in [100_000usize, 500_000] {
        let t = binary_table(rows, 10);
        let subsets = workload(10);
        group.throughput(Throughput::Elements(subsets.len() as u64));
        group.bench_with_input(BenchmarkId::new("no_cube", rows), &rows, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for s in &subsets {
                    acc ^= ContingencyTable::from_table(&t, &t.all_rows(), s).support();
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("cube", rows), &rows, |b, _| {
            b.iter(|| {
                let all: Vec<AttrId> = t.schema().attr_ids().collect();
                let cube = DataCube::build(&t, &t.all_rows(), &all, 12).expect("cube");
                let mut acc = 0u64;
                for s in &subsets {
                    acc ^= cube.counts_for(s).expect("covered").support();
                }
                acc
            })
        });
        // The amortised regime: cube already built (repeat querying).
        let all: Vec<AttrId> = t.schema().attr_ids().collect();
        let cube = DataCube::build(&t, &t.all_rows(), &all, 12).expect("cube");
        group.bench_with_input(BenchmarkId::new("cube_warm", rows), &rows, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for s in &subsets {
                    acc ^= cube.counts_for(s).expect("covered").support();
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cube);
criterion_main!(benches);
