//! Criterion micro-benchmarks behind Fig 6(b): the cost of one
//! conditional-independence test per procedure, plus the HyMIT β
//! threshold ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypdb_datasets::random_data::{random_data, RandomDataConfig};
use hypdb_stats::independence::{chi2_test, hymit, mit, mit_sampled, shuffle_test, MitConfig};
use hypdb_table::contingency::Stratified;
use hypdb_table::AttrId;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(rows: usize) -> (hypdb_table::Table, AttrId, AttrId, Vec<AttrId>) {
    let d = random_data(&RandomDataConfig {
        nodes: 6,
        expected_edges: 9.0,
        rows,
        min_categories: 2,
        max_categories: 6,
        seed: 0xBE,
        ..RandomDataConfig::default()
    });
    let t = d.table;
    let x = AttrId(0);
    let y = AttrId(1);
    let z = vec![AttrId(2), AttrId(3)];
    (t, x, y, z)
}

fn bench_tests(c: &mut Criterion) {
    let mut group = c.benchmark_group("independence_test");
    group.sample_size(10);
    for rows in [10_000usize, 50_000] {
        let (t, x, y, z) = setup(rows);
        let strata = Stratified::build(&t, &t.all_rows(), x, y, &z);
        group.bench_with_input(BenchmarkId::new("chi2", rows), &rows, |b, _| {
            b.iter(|| chi2_test(&strata))
        });
        group.bench_with_input(BenchmarkId::new("mit_m100", rows), &rows, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| mit(&strata, 100, &mut rng))
        });
        group.bench_with_input(BenchmarkId::new("mit_sampled_m100", rows), &rows, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            let k = MitConfig::auto_group_sample(strata.num_groups());
            b.iter(|| mit_sampled(&strata, 100, k, &mut rng))
        });
        group.bench_with_input(BenchmarkId::new("hymit", rows), &rows, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| hymit(&strata, &MitConfig::default(), &mut rng))
        });
        // The naive baseline re-shuffles raw rows: O(m·n).
        let xc = t.column(x).codes().to_vec();
        let yc = t.column(y).codes().to_vec();
        let groups: Vec<u32> = {
            let c2 = t.column(z[0]).codes();
            let c3 = t.column(z[1]).codes();
            let card2 = t.cardinality(z[0]);
            (0..t.nrows()).map(|i| c2[i] + card2 * c3[i]).collect()
        };
        group.bench_with_input(BenchmarkId::new("shuffle_m100", rows), &rows, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| shuffle_test(&xc, &yc, &groups, 100, &mut rng))
        });
    }
    group.finish();
}

fn bench_hymit_beta(c: &mut Criterion) {
    // Ablation: the β switch-over threshold of HyMIT (§6, "β = 5 is
    // ideal"). Low β = almost always χ² (fast, risky on sparse data);
    // high β = almost always MIT (safe, slow).
    let mut group = c.benchmark_group("hymit_beta");
    group.sample_size(10);
    let (t, x, y, z) = setup(20_000);
    let strata = Stratified::build(&t, &t.all_rows(), x, y, &z);
    for beta in [1.0f64, 5.0, 25.0, 125.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("beta_{beta}")),
            &beta,
            |b, &beta| {
                let mut rng = StdRng::seed_from_u64(1);
                let cfg = MitConfig {
                    beta,
                    ..MitConfig::default()
                };
                b.iter(|| hymit(&strata, &cfg, &mut rng))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tests, bench_hymit_beta);
criterion_main!(benches);
