//! Criterion benches behind Table 1: end-to-end HypDB analysis per
//! dataset (detect + explain + resolve), plus the exact-matching
//! ablation on the rewriter.

use criterion::{criterion_group, criterion_main, Criterion};
use hypdb_core::effect::adjusted_averages;
use hypdb_core::{HypDb, Query};
use hypdb_datasets as ds;
use hypdb_stats::independence::MitConfig;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    let cancer = ds::cancer_data(2_000, 17);
    group.bench_function("cancer_2k", |b| {
        let q = Query::from_sql(
            "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData GROUP BY Lung_Cancer",
            &cancer,
        )
        .expect("query");
        b.iter(|| HypDb::new(&cancer).analyze(&q).expect("analysis"))
    });

    let berkeley = ds::berkeley_data();
    group.bench_function("berkeley_4.5k", |b| {
        let q = Query::from_sql(
            "SELECT Gender, avg(Accepted) FROM BerkeleyData GROUP BY Gender",
            &berkeley,
        )
        .expect("query");
        b.iter(|| HypDb::new(&berkeley).analyze(&q).expect("analysis"))
    });

    let flight = ds::flight_data(&ds::FlightConfig {
        rows: 20_000,
        total_attrs: 40,
        ..ds::FlightConfig::default()
    });
    group.bench_function("flight_20k_40attrs", |b| {
        let q = Query::from_sql(
            "SELECT Carrier, avg(Delayed) FROM FlightData \
             WHERE Carrier IN ('AA','UA') AND Airport IN ('COS','MFE','MTJ','ROC') \
             GROUP BY Carrier",
            &flight,
        )
        .expect("query");
        b.iter(|| HypDb::new(&flight).analyze(&q).expect("analysis"))
    });

    group.finish();
}

fn bench_rewriter(c: &mut Criterion) {
    // Ablation: the adjustment-formula evaluation itself (Listing 2),
    // with and without covariates.
    let mut group = c.benchmark_group("rewriter");
    group.sample_size(20);
    let t = ds::staples_data(&ds::StaplesConfig {
        rows: 200_000,
        ..ds::StaplesConfig::default()
    });
    let income = t.attr("Income").expect("attr");
    let price = t.attr("Price").expect("attr");
    let distance = t.attr("Distance").expect("attr");
    let urban = t.attr("Urban").expect("attr");
    let mit = MitConfig::default();
    group.bench_function("naive_group_by", |b| {
        b.iter(|| {
            adjusted_averages(&t, &t.all_rows(), income, &[0, 1], &[price], &[], &mit, 1)
                .expect("estimate")
        })
    });
    group.bench_function("adjusted_two_covariates", |b| {
        b.iter(|| {
            adjusted_averages(
                &t,
                &t.all_rows(),
                income,
                &[0, 1],
                &[price],
                &[distance, urban],
                &mit,
                1,
            )
            .expect("estimate")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_rewriter);
criterion_main!(benches);
