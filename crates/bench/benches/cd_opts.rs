//! Criterion benches behind Fig 6(c): the CD algorithm with entropy
//! caching and contingency-table materialisation toggled.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypdb_causal::cd::{discover_parents, CdConfig};
use hypdb_causal::oracle::{CiConfig, DataOracle, IndependenceTestKind};
use hypdb_datasets::random_data::{random_data, RandomDataConfig};

fn bench_cd_configs(c: &mut Criterion) {
    let mut group = c.benchmark_group("cd_optimisations");
    group.sample_size(10);
    let d = random_data(&RandomDataConfig {
        nodes: 8,
        expected_edges: 12.0,
        rows: 50_000,
        min_categories: 2,
        max_categories: 5,
        seed: 0xCD,
        ..RandomDataConfig::default()
    });
    let configs: [(&str, bool, bool); 4] = [
        ("plain", false, false),
        ("cache", true, false),
        ("materialize", false, true),
        ("both", true, true),
    ];
    for (name, cache, mat) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                let cfg = CiConfig {
                    kind: IndependenceTestKind::ChiSquared,
                    cache_entropies: cache,
                    materialize: mat,
                    ..CiConfig::default()
                };
                let oracle = DataOracle::over_all_attrs(&d.table, d.table.all_rows(), cfg);
                discover_parents(&oracle, 0, CdConfig::default())
            })
        });
    }
    // Warm oracle = the "precomputed entropies" floor of Fig 6(c).
    let oracle = DataOracle::over_all_attrs(&d.table, d.table.all_rows(), CiConfig::default());
    discover_parents(&oracle, 0, CdConfig::default());
    group.bench_function("warm", |b| {
        b.iter(|| discover_parents(&oracle, 0, CdConfig::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_cd_configs);
criterion_main!(benches);
