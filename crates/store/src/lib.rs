//! Sharded columnar storage for HypDB.
//!
//! The paper's detection/explanation pipeline (§4–§6) is dominated by
//! repeated scans of the base table: WHERE selection per context,
//! group-by for covariate strata, cube materialisation, and contingency
//! counting for every independence statement. This crate promotes the
//! chunked-partial-counts trick of `ContingencyTable::from_table` into
//! a first-class storage layout:
//!
//! * [`ShardedTable`] — a partitioned columnar relation whose shards
//!   are **fixed-size row ranges** with per-shard code columns in a
//!   **merged global dictionary**, so attribute codes are identical to
//!   the monolithic `hypdb_table::Table` encoding and every kernel
//!   produces byte-identical results on either layout,
//! * [`ShardedTableBuilder`] — row-at-a-time construction with
//!   per-shard local dictionaries merged (in shard order) into the
//!   global dictionary when a shard seals; at most one unsealed shard
//!   is buffered at a time,
//! * [`ingest`] — streaming CSV ingest ([`read_csv_shards`]) that reads
//!   record by record through `hypdb_table::csv::CsvRecords` and never
//!   materialises the file,
//! * [`ops`] — the parallel scan primitives ([`scan_filter`],
//!   [`group_count`], [`contingency`], [`build_cube`]): thin, documented
//!   fronts over the shared `Scan`-generic kernels in `hypdb-table`,
//!   which fan out per shard / fixed chunk on the `hypdb-exec` pool and
//!   merge partials deterministically.
//!
//! **Determinism contract.** For any shard size and worker count, every
//! operation over a `ShardedTable` — and the whole analyze pipeline on
//! top — is byte-identical to the monolithic path. Codes agree because
//! dictionaries merge in first-appearance order; scans agree because
//! chunk layouts are pure functions of the selection and partials merge
//! in ascending row order; RNG streams agree because seeds derive from
//! configuration, never from storage. `tests/sharding.rs` pins this on
//! the cancer and adult pipelines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ingest;
pub mod ops;
pub mod sharded;

pub use ingest::{read_csv_shards, read_csv_shards_path};
pub use ops::{build_cube, contingency, group_count, scan_filter};
pub use sharded::{ShardedTable, ShardedTableBuilder};

/// Default rows per shard when none is specified: large enough that
/// per-shard dictionary merges amortise, small enough that a shard is a
/// cache-friendly unit of parallel work.
pub const DEFAULT_SHARD_ROWS: usize = 1 << 16;

/// Reads the `HYPDB_SHARD_ROWS` environment variable: `None` when
/// unset, unparsable, or `0` (all meaning "monolithic storage");
/// `Some(rows)` otherwise. The CI matrix drives the equivalence suite
/// and the examples through both settings.
pub fn env_shard_rows() -> Option<usize> {
    std::env::var("HYPDB_SHARD_ROWS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}
