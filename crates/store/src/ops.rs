//! Parallel scan primitives over any [`Scan`] storage.
//!
//! These are the named entry points of the storage subsystem. The
//! heavy lifting lives in the shared `Scan`-generic kernels of
//! `hypdb-table` (one kernel per operation, backing both the
//! monolithic and the sharded path); each primitive here documents the
//! decomposition/merge discipline that makes it deterministic:
//!
//! * [`scan_filter`] — per-shard predicate evaluation on the
//!   `hypdb-exec` pool, partial id lists concatenated in shard order,
//! * [`contingency`] / [`group_count`] — whole-table scans walk
//!   per-shard slice runs inside fixed chunks; dense partials merge by
//!   exact `u64` sums, sparse partials merge in ascending row order,
//! * [`build_cube`] — materialises the joint over the same kernel and
//!   serves marginals from its cache.

use hypdb_table::cube::DataCube;
use hypdb_table::groupby::{group_counts, GroupRow};
use hypdb_table::{AttrId, ContingencyTable, Predicate, Result, RowSet, Scan};

/// Evaluates `predicate` over the whole relation: each shard is
/// filtered independently on the worker pool and the per-shard row-id
/// partials are concatenated in shard order, yielding the ascending id
/// list (or [`RowSet::All`] for the trivially-true predicate) — the
/// same result as a monolithic scan, at any shard size or thread count.
pub fn scan_filter<S: Scan + ?Sized>(scan: &S, predicate: &Predicate) -> RowSet {
    predicate.select(scan)
}

/// `count(*) GROUP BY attrs` over the selected rows, sorted by group
/// key. Counting fans out over fixed row chunks (walking per-shard
/// slice runs inside each chunk) and merges partial tables
/// deterministically.
pub fn group_count<S: Scan + ?Sized>(scan: &S, rows: &RowSet, attrs: &[AttrId]) -> Vec<GroupRow> {
    group_counts(scan, rows, attrs)
}

/// The k-way contingency table of `attrs` over the selected rows —
/// the counting kernel behind every HypDB statistic. Dimensions come
/// from the global dictionaries, so tables built from different shard
/// layouts are byte-identical.
pub fn contingency<S: Scan + ?Sized>(
    scan: &S,
    rows: &RowSet,
    attrs: &[AttrId],
) -> ContingencyTable {
    ContingencyTable::from_table(scan, rows, attrs)
}

/// Materialises a data cube (joint contingency table + cached
/// marginals) over the selected rows; the joint build scans shard-
/// parallel like [`contingency`].
pub fn build_cube<S: Scan + ?Sized>(
    scan: &S,
    rows: &RowSet,
    attrs: &[AttrId],
    max_attrs: usize,
) -> Result<DataCube> {
    DataCube::build(scan, rows, attrs, max_attrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::ShardedTable;
    use hypdb_table::TableBuilder;

    fn table() -> hypdb_table::Table {
        let mut b = TableBuilder::new(["t", "z"]);
        for i in 0..50u32 {
            b.push_row([
                ((i * 3) % 4).to_string().as_str(),
                (i % 5).to_string().as_str(),
            ])
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn scan_filter_matches_monolithic() {
        let mono = table();
        let pred = Predicate::eq(&mono, "t", "0").unwrap();
        let expect = scan_filter(&mono, &pred);
        for shard_rows in [1usize, 7, 16, 50, 64] {
            let sharded = ShardedTable::from_table(&mono, shard_rows);
            assert_eq!(
                scan_filter(&sharded, &pred),
                expect,
                "shard_rows={shard_rows}"
            );
        }
        // Trivial predicates keep their fast paths.
        assert_eq!(
            scan_filter(&ShardedTable::from_table(&mono, 8), &Predicate::True),
            RowSet::All(50)
        );
        assert!(scan_filter(&mono, &Predicate::False).is_empty());
    }

    #[test]
    fn group_count_and_contingency_match() {
        let mono = table();
        let attrs: Vec<AttrId> = mono.schema().attr_ids().collect();
        let rows = mono.all_rows();
        let base_groups = group_count(&mono, &rows, &attrs);
        let base_cells = contingency(&mono, &rows, &attrs).cells();
        for shard_rows in [3usize, 10, 50] {
            let sharded = ShardedTable::from_table(&mono, shard_rows);
            assert_eq!(
                group_count(&sharded, &sharded.all_rows(), &attrs),
                base_groups
            );
            assert_eq!(
                contingency(&sharded, &sharded.all_rows(), &attrs).cells(),
                base_cells
            );
        }
    }

    #[test]
    fn cube_serves_marginals_on_shards() {
        let mono = table();
        let attrs: Vec<AttrId> = mono.schema().attr_ids().collect();
        let sharded = ShardedTable::from_table(&mono, 9);
        let cube = build_cube(&sharded, &sharded.all_rows(), &attrs, 12).unwrap();
        let direct = contingency(&mono, &mono.all_rows(), &attrs[0..1]);
        let served = cube.counts_for(&attrs[0..1]).unwrap();
        let mut a = served.cells();
        let mut b = direct.cells();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
