//! The partitioned columnar relation and its builder.

use hypdb_table::column::{Column, Dictionary};
use hypdb_table::scan::Scan;
use hypdb_table::{AttrId, Error, Result, RowSet, Schema, Table};

/// One shard: a fixed-size row range stored as one global-code column
/// per attribute.
#[derive(Debug, Clone, Default)]
pub struct Shard {
    /// Per-attribute codes (global dictionary space), all equal length.
    columns: Vec<Vec<u32>>,
}

impl Shard {
    /// Number of rows in the shard.
    pub fn nrows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// The global-code slice of one attribute.
    pub fn codes(&self, attr: AttrId) -> &[u32] {
        &self.columns[attr.index()]
    }
}

/// A partitioned, dictionary-encoded, column-oriented relation.
///
/// Shards are fixed-size row ranges (`shard_rows` each, last one
/// short); codes live in the **merged global dictionary**, which is
/// byte-identical to the dictionary a monolithic [`Table`] would build
/// from the same row stream (first-appearance order, merged shard by
/// shard). Every `hypdb-table` kernel therefore produces identical
/// output on either representation, while scans fan out shard by shard
/// on the worker pool and ingest streams without materialising the
/// whole input.
#[derive(Debug, Clone, Default)]
pub struct ShardedTable {
    schema: Schema,
    dicts: Vec<Dictionary>,
    shards: Vec<Shard>,
    shard_rows: usize,
    nrows: usize,
}

impl ShardedTable {
    /// Re-partitions a monolithic table into `shard_rows`-sized shards.
    /// Dictionaries are shared (cloned), so codes are identical by
    /// construction.
    pub fn from_table(table: &Table, shard_rows: usize) -> ShardedTable {
        let shard_rows = shard_rows.max(1);
        let n = table.nrows();
        let nattrs = table.nattrs();
        let mut shards = Vec::with_capacity(n.div_ceil(shard_rows));
        let mut start = 0usize;
        while start < n {
            let end = (start + shard_rows).min(n);
            let columns = (0..nattrs as u32)
                .map(|a| table.column(AttrId(a)).codes()[start..end].to_vec())
                .collect();
            shards.push(Shard { columns });
            start = end;
        }
        ShardedTable {
            schema: table.schema().clone(),
            dicts: (0..nattrs as u32)
                .map(|a| table.column(AttrId(a)).dict().clone())
                .collect(),
            shards,
            shard_rows,
            nrows: n,
        }
    }

    /// Materialises the equivalent monolithic table (concatenated
    /// codes, shared dictionaries) — the inverse of
    /// [`ShardedTable::from_table`].
    pub fn to_table(&self) -> Table {
        let columns: Vec<Column> = (0..self.schema.len())
            .map(|i| {
                let mut codes = Vec::with_capacity(self.nrows);
                for shard in &self.shards {
                    codes.extend_from_slice(&shard.columns[i]);
                }
                Column::from_parts(codes, self.dicts[i].clone())
            })
            .collect();
        Table::from_columns(self.schema.clone(), columns).expect("shards kept columns aligned")
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of attributes.
    pub fn nattrs(&self) -> usize {
        self.schema.len()
    }

    /// Rows per shard (every shard except the last).
    pub fn shard_rows(&self) -> usize {
        self.shard_rows
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// One shard.
    pub fn shard(&self, i: usize) -> &Shard {
        &self.shards[i]
    }

    /// Resolves an attribute name.
    pub fn attr(&self, name: &str) -> Result<AttrId> {
        self.schema.attr(name)
    }

    /// The merged global dictionary of an attribute.
    pub fn dict(&self, attr: AttrId) -> &Dictionary {
        &self.dicts[attr.index()]
    }

    /// Observed cardinality of an attribute.
    pub fn cardinality(&self, attr: AttrId) -> u32 {
        self.dicts[attr.index()].len() as u32
    }

    /// The string value of `attr` at global row `row`.
    pub fn value(&self, attr: AttrId, row: u32) -> &str {
        self.dicts[attr.index()].value(Scan::code(self, attr, row))
    }

    /// All rows as a [`RowSet`].
    pub fn all_rows(&self) -> RowSet {
        RowSet::All(self.nrows as u32)
    }
}

impl Scan for ShardedTable {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn nrows(&self) -> usize {
        self.nrows
    }

    fn dict(&self, attr: AttrId) -> &Dictionary {
        &self.dicts[attr.index()]
    }

    fn shard_rows(&self) -> usize {
        self.shard_rows.max(1)
    }

    fn shard_codes(&self, shard: usize, attr: AttrId) -> &[u32] {
        &self.shards[shard].columns[attr.index()]
    }
}

/// Row-at-a-time builder for [`ShardedTable`].
///
/// Rows are interned into **per-shard local dictionaries**; when a
/// shard reaches `shard_rows` rows it is *sealed*: each local
/// dictionary is merged into the global one (local-code order, i.e.
/// first-appearance order within the shard) and the shard's codes are
/// remapped to global space. Because shards seal in order, the merged
/// global dictionary assigns codes in first-appearance order over the
/// whole row stream — exactly what a monolithic [`TableBuilder`]
/// (`hypdb_table::TableBuilder`) would assign. Only one unsealed shard
/// is ever buffered, so ingest memory beyond the sealed shards is
/// `O(shard_rows)`.
#[derive(Debug, Clone)]
pub struct ShardedTableBuilder {
    schema: Schema,
    shard_rows: usize,
    dicts: Vec<Dictionary>,
    sealed: Vec<Shard>,
    /// The unsealed shard: local dictionaries + local codes.
    current: Vec<Column>,
    nrows: usize,
}

impl ShardedTableBuilder {
    /// New builder over the given attribute names, sealing a shard
    /// every `shard_rows` rows (clamped to ≥ 1).
    pub fn new<I, S>(names: I, shard_rows: usize) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let schema = Schema::new(names);
        let nattrs = schema.len();
        ShardedTableBuilder {
            schema,
            shard_rows: shard_rows.max(1),
            dicts: vec![Dictionary::new(); nattrs],
            sealed: Vec::new(),
            current: (0..nattrs).map(|_| Column::new()).collect(),
            nrows: 0,
        }
    }

    /// Appends one row of string values. The row is validated for arity
    /// before anything is interned, so a failed push leaves the builder
    /// untouched.
    pub fn push_row<'a, I>(&mut self, values: I) -> Result<()>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let vals: Vec<&str> = values.into_iter().collect();
        if vals.len() != self.current.len() {
            return Err(Error::ArityMismatch {
                expected: self.current.len(),
                got: vals.len(),
            });
        }
        for (col, v) in self.current.iter_mut().zip(vals) {
            col.push(v);
        }
        self.nrows += 1;
        if self.current.first().map_or(0, Column::len) >= self.shard_rows {
            self.seal();
        }
        Ok(())
    }

    /// Number of rows pushed so far.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// The schema being built.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Seals the current shard: merges its local dictionaries into the
    /// global ones (in local-code order) and remaps its codes.
    fn seal(&mut self) {
        let mut columns = Vec::with_capacity(self.current.len());
        for (col, global) in self.current.iter_mut().zip(&mut self.dicts) {
            let local = std::mem::take(col);
            // Local code -> global code, interning new values in local
            // first-appearance order (which, shard after shard, is the
            // stream's first-appearance order).
            let remap: Vec<u32> = local
                .dict()
                .values()
                .iter()
                .map(|v| global.intern(v))
                .collect();
            columns.push(local.codes().iter().map(|&c| remap[c as usize]).collect());
        }
        self.sealed.push(Shard { columns });
    }

    /// Finishes the table, sealing any trailing partial shard.
    pub fn finish(mut self) -> ShardedTable {
        if self.current.first().map_or(0, Column::len) > 0 {
            self.seal();
        }
        ShardedTable {
            schema: self.schema,
            dicts: self.dicts,
            shards: self.sealed,
            shard_rows: self.shard_rows,
            nrows: self.nrows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypdb_table::TableBuilder;

    fn rows() -> Vec<[String; 2]> {
        (0..23u32)
            .map(|i| [format!("v{}", i % 7), format!("w{}", i % 3)])
            .collect()
    }

    fn monolithic() -> Table {
        let mut b = TableBuilder::new(["a", "b"]);
        for r in rows() {
            b.push_row(r.iter().map(String::as_str)).unwrap();
        }
        b.finish()
    }

    #[test]
    fn builder_codes_match_monolithic_encoding() {
        let mono = monolithic();
        for shard_rows in [1usize, 4, 5, 23, 100] {
            let mut b = ShardedTableBuilder::new(["a", "b"], shard_rows);
            for r in rows() {
                b.push_row(r.iter().map(String::as_str)).unwrap();
            }
            let sharded = b.finish();
            assert_eq!(sharded.nrows(), 23);
            for a in [AttrId(0), AttrId(1)] {
                assert_eq!(
                    sharded.dict(a).values(),
                    mono.column(a).dict().values(),
                    "shard_rows={shard_rows}"
                );
                for row in 0..23u32 {
                    assert_eq!(Scan::code(&sharded, a, row), mono.code(a, row));
                }
            }
        }
    }

    #[test]
    fn from_table_roundtrips() {
        let mono = monolithic();
        let sharded = ShardedTable::from_table(&mono, 6);
        assert_eq!(sharded.n_shards(), 4);
        assert_eq!(sharded.shard(3).nrows(), 5);
        let back = sharded.to_table();
        assert_eq!(back.nrows(), mono.nrows());
        for a in [AttrId(0), AttrId(1)] {
            assert_eq!(back.column(a).codes(), mono.column(a).codes());
        }
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = ShardedTableBuilder::new(["a", "b"], 4);
        assert!(b.push_row(["1"]).is_err());
        b.push_row(["1", "2"]).unwrap();
        assert_eq!(b.nrows(), 1);
    }

    #[test]
    fn empty_builder_finishes_empty() {
        let t = ShardedTableBuilder::new(["a"], 8).finish();
        assert_eq!(t.nrows(), 0);
        assert_eq!(t.n_shards(), 0);
        assert_eq!(Scan::n_shards(&t), 0);
    }

    #[test]
    fn values_resolve_across_shards() {
        let mut b = ShardedTableBuilder::new(["a", "b"], 3);
        for r in rows() {
            b.push_row(r.iter().map(String::as_str)).unwrap();
        }
        let t = b.finish();
        let a = t.attr("a").unwrap();
        for (i, r) in rows().iter().enumerate() {
            assert_eq!(t.value(a, i as u32), r[0]);
        }
    }
}
