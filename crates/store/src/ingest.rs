//! Streaming CSV ingest into sharded storage.
//!
//! Reads record by record through the single shared ingest driver
//! ([`hypdb_table::csv::ingest_csv`]) straight into a
//! [`ShardedTableBuilder`]: the file is never materialised, and memory
//! beyond the sealed shards is one unsealed shard plus one record.

use crate::sharded::{ShardedTable, ShardedTableBuilder};
use hypdb_table::csv::ingest_csv;
use hypdb_table::Result;
use std::io::Read;
use std::path::Path;

/// Reads a sharded table from CSV text, streaming: one record at a
/// time into the shard builder, sealing a shard every `shard_rows`
/// rows. Runs on the same ingest driver ([`ingest_csv`]) as the
/// monolithic `read_csv`, so the resulting dictionary and codes are
/// identical to that encoding by construction.
pub fn read_csv_shards<R: Read>(reader: R, shard_rows: usize) -> Result<ShardedTable> {
    ingest_csv(
        reader,
        |header| ShardedTableBuilder::new(header.iter().map(String::as_str), shard_rows),
        |builder, fields| builder.push_row(fields.iter().map(String::as_str)),
    )
    .map(ShardedTableBuilder::finish)
}

/// Reads a sharded table from a CSV file (streaming; see
/// [`read_csv_shards`]).
pub fn read_csv_shards_path<P: AsRef<Path>>(path: P, shard_rows: usize) -> Result<ShardedTable> {
    read_csv_shards(std::fs::File::open(path)?, shard_rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypdb_table::csv::read_csv;
    use hypdb_table::{AttrId, Scan};

    const DATA: &str = "carrier,airport\nAA,COS\nUA,ROC\nAA,ROC\nDL,COS\nUA,MFE\nAA,COS\n";

    #[test]
    fn streaming_matches_monolithic() {
        let mono = read_csv(DATA.as_bytes()).unwrap();
        for shard_rows in [1usize, 2, 3, 6, 64] {
            let sharded = read_csv_shards(DATA.as_bytes(), shard_rows).unwrap();
            assert_eq!(sharded.nrows(), mono.nrows());
            for a in [AttrId(0), AttrId(1)] {
                assert_eq!(sharded.dict(a).values(), mono.column(a).dict().values());
                for row in 0..mono.nrows() as u32 {
                    assert_eq!(Scan::code(&sharded, a, row), mono.code(a, row));
                }
            }
        }
    }

    #[test]
    fn quoted_multiline_records_stream() {
        let data = "a,b\n\"line1\nline2\",x\n\"y\",z\n";
        let t = read_csv_shards(data.as_bytes(), 1).unwrap();
        assert_eq!(t.nrows(), 2);
        assert_eq!(t.value(AttrId(0), 0), "line1\nline2");
        assert_eq!(t.value(AttrId(1), 1), "z");
    }

    #[test]
    fn arity_and_empty_rejected() {
        assert!(read_csv_shards("".as_bytes(), 4).is_err());
        assert!(read_csv_shards("a,b\n1\n".as_bytes(), 4).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("hypdb_store_ingest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        std::fs::write(&path, DATA).unwrap();
        let t = read_csv_shards_path(&path, 2).unwrap();
        assert_eq!(t.nrows(), 6);
        assert_eq!(t.n_shards(), 3);
        std::fs::remove_file(path).ok();
    }
}
