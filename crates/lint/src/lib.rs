//! `hypdb-lint` — the workspace determinism & safety analyzer.
//!
//! Every PR in this repository stakes correctness on one invariant:
//! reports are byte-identical across `HYPDB_THREADS` ×
//! `HYPDB_SHARD_ROWS` × batching on/off. The example-based pins in
//! `tests/determinism.rs` defend that invariant at a handful of
//! fixtures; this crate defends it at the *source* level, as a
//! token/line-level static analysis over the whole workspace
//! (`vendor/` excluded) with seven rules:
//!
//! | rule | defends against |
//! |------|-----------------|
//! | `nondeterministic-iteration` | emitting `HashMap`/`HashSet`/`ShardedMap` entries in hash order |
//! | `unseeded-rng` | RNG state not derived from the config seed / SplitMix64 streams |
//! | `wall-clock-in-output` | `Instant::now`/`SystemTime::now` leaking into report bytes |
//! | `raw-instant-outside-obs` | `Instant` plumbing that bypasses `hypdb_obs::{Tick, Deadline}` |
//! | `unsafe-without-safety-comment` | undocumented `unsafe` / FFI blocks |
//! | `unwrap-in-request-path` | panics in `hypdb-serve` request handling |
//! | `float-reduction-order` | float sums in hash-iteration order |
//!
//! Findings carry `file:line:col` spans; suppression is inline via
//! `// lint:allow(<rule>) — <reason>` (the reason is mandatory and the
//! directive syntax itself is checked). The report is deterministic:
//! files are walked in sorted order, diagnostics sorted by
//! `(path, line, col, rule)`, and nothing timestamped — two runs over
//! the same tree emit identical bytes. There is no `--fix`: every fix
//! is a reviewed code change.
//!
//! The binary (`cargo run -p hypdb-lint -- --check .`) exits nonzero
//! on any diagnostic and gates CI next to clippy;
//! `tests/workspace_clean.rs` asserts the workspace itself stays
//! clean under plain `cargo test`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::path::{Path, PathBuf};

pub mod bindings;
pub mod rules;
pub mod source;

/// One finding, spanned to `path:line:col` (1-based).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path (`/`-separated).
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (byte offset into the line).
    pub col: usize,
    /// Rule name (`lint:allow` target), or `invalid-allow`.
    pub rule: &'static str,
    /// Human-readable description with the suggested fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Directory names never descended into: vendored deps are not ours to
/// lint, build output and VCS metadata are not source, and the lint
/// fixtures *must* trip rules (that is their job).
const EXCLUDED_DIRS: &[&str] = &["vendor", "target", ".git", "fixtures", "node_modules"];

/// Collects every `.rs` file under `root` (excluding [`EXCLUDED_DIRS`])
/// in sorted relative-path order. A `root` that is itself a file is
/// linted as-is — its path is kept whole, so path-scoped rules still
/// see the directory context (`hypdb-lint --check path/to/file.rs`).
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    if root.is_file() {
        return Ok(vec![root.to_path_buf()]);
    }
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if path.is_dir() {
                if !EXCLUDED_DIRS.contains(&name.as_str()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints the workspace rooted at `root`; returns diagnostics sorted by
/// `(path, line, col, rule, message)` — a deterministic report.
pub fn run(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let rule_names = rules::names();
    let mut out = Vec::new();
    for path in collect_files(root)? {
        let rel = match path.strip_prefix(root) {
            // Empty when `root` is the file itself — keep the whole
            // path so path-scoped rules see the directory context.
            Ok(p) if !p.as_os_str().is_empty() => p.to_string_lossy().replace('\\', "/"),
            _ => path.to_string_lossy().replace('\\', "/"),
        };
        let text = std::fs::read_to_string(&path)?;
        let file = source::SourceFile::parse(rel, &text, &rule_names);
        rules::check_file(&file, &mut out);
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_display_is_span_first() {
        let d = Diagnostic {
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 7,
            rule: "unseeded-rng",
            message: "boom".into(),
        };
        assert_eq!(d.to_string(), "crates/x/src/lib.rs:3:7: unseeded-rng: boom");
    }

    #[test]
    fn rule_names_are_kebab_and_unique() {
        let names = rules::names();
        assert_eq!(names.len(), 7);
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
        assert!(names
            .iter()
            .all(|n| n.chars().all(|c| c.is_ascii_lowercase() || c == '-')));
    }
}
