//! Per-file identifier → "unordered hash container" binding scan.
//!
//! Token-level type inference: an identifier counts as hash-bound when
//! the file declares it with a hash-container type annotation (`let`,
//! struct field, or fn parameter — `name: FxHashMap<…>`, possibly
//! inside shared-ownership wrappers like `Arc<Mutex<…>>`) or
//! initialises it from a hash-container constructor path
//! (`HashMap::new()`, `FxHashSet::default()`, `ShardedMap::with_shards`).
//! Wrappers that impose an order of their own (`Vec<…>`, `Box<[…]>`)
//! block the binding: iterating a *slice of* maps is ordered.
//!
//! This is deliberately heuristic: a miss means a finding the dynamic
//! determinism tests must catch instead, a false hit costs one reasoned
//! `lint:allow`. Both are cheap; silent nondeterminism is not.

use crate::source::SourceFile;
use std::collections::BTreeSet;

/// Container type names treated as unordered. `FxHashMap`/`FxHashSet`
/// are caught by suffix match, `ShardedMap` is `hypdb_exec`'s sharded
/// cache (its `fold` visits shards in bucket order).
const HASH_SUFFIXES: &[&str] = &["HashMap", "HashSet", "ShardedMap"];

/// Ownership/interior-mutability wrappers to peel when walking from a
/// hash type token back to the declared name.
const PEELABLE: &[&str] = &[
    "Arc", "Rc", "Mutex", "RwLock", "Box", "Option", "Cell", "RefCell", "OnceLock",
];

/// Identifiers bound to unordered hash containers in one file.
pub struct Bindings {
    names: BTreeSet<String>,
}

impl Bindings {
    /// True when `name` is hash-bound.
    pub fn contains(&self, name: &str) -> bool {
        self.names.contains(name)
    }

    /// The bound names, in sorted order (deterministic reporting).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }
}

/// Scans the whole file for hash-container bindings.
pub fn hash_bindings(file: &SourceFile) -> Bindings {
    let mut names = BTreeSet::new();
    for line in 0..file.len() {
        bind_annotations(&file.code[line], &mut names);
        bind_constructor_lets(file, line, &mut names);
    }
    Bindings { names }
}

/// `name: FxHashMap<…>` / `name: Arc<Mutex<HashMap<…>>>` — find each
/// hash type token and walk back through peelable wrappers to a `:`
/// preceded by an identifier.
fn bind_annotations(code: &str, names: &mut BTreeSet<String>) {
    for suffix in HASH_SUFFIXES {
        let token = format!("{suffix}<");
        let mut from = 0;
        while let Some(rel) = code[from..].find(&token) {
            let pos = from + rel;
            from = pos + token.len();
            // Expand to the start of the word (`FxHashMap<` matched via
            // `HashMap<`): the full word must *end* with the suffix.
            let word_start = code[..pos]
                .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
                .map_or(0, |p| p + 1);
            if !code[word_start..pos + suffix.len()].ends_with(suffix) {
                continue;
            }
            if let Some(name) = declared_name_before(code, word_start) {
                names.insert(name);
            }
        }
    }
}

/// Walks back from a type expression start over peelable wrappers and
/// reference sigils to `name:`; returns the name.
fn declared_name_before(code: &str, mut type_start: usize) -> Option<String> {
    loop {
        let before = code[..type_start].trim_end();
        if let Some(stripped) = before.strip_suffix('<') {
            // `Wrapper<` — peel only known ownership wrappers; anything
            // else (`Vec<`, `[`) imposes its own order or isn't a
            // direct binding.
            let w = stripped.trim_end();
            let word_start = w
                .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
                .map_or(0, |p| p + 1);
            if !PEELABLE.contains(&&w[word_start..]) {
                return None;
            }
            type_start = word_start;
        } else if before.ends_with('&') {
            type_start = code[..type_start].rfind('&').unwrap_or(0);
        } else if trailing_lifetime(before).is_some() {
            type_start = trailing_lifetime(before).expect("checked above");
        } else if before.ends_with("mut") || before.ends_with("dyn") {
            type_start = before.len() - 3;
        } else if let Some(stripped) = before.strip_suffix(':') {
            // `name:` — but `::` is a path, not an annotation.
            if stripped.ends_with(':') {
                return None;
            }
            let w = stripped.trim_end();
            let word_start = w
                .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
                .map_or(0, |p| p + 1);
            let name = &w[word_start..];
            return (!name.is_empty() && !name.starts_with(|c: char| c.is_ascii_digit()))
                .then(|| name.to_string());
        } else {
            return None;
        }
    }
}

/// Byte offset of a trailing `'lifetime` token (`&'a `), if present.
fn trailing_lifetime(before: &str) -> Option<usize> {
    let word_start = before
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_' || c == '\''))
        .map_or(0, |p| p + 1);
    before[word_start..].starts_with('\'').then_some(word_start)
}

/// `let [mut] name = <expr with HashMap::…>;` — constructor-based
/// binding for un-annotated `let`s. The expression window spans the
/// statement (multi-line `let`s included).
fn bind_constructor_lets(file: &SourceFile, line: usize, names: &mut BTreeSet<String>) {
    let code = &file.code[line];
    for pos in crate::source::find_words(code, "let") {
        let rest = &code[pos + 3..];
        let rest = rest.trim_start();
        let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
        let name_end = rest
            .find(|c: char| !(c.is_alphanumeric() || c == '_'))
            .unwrap_or(rest.len());
        let name = &rest[..name_end];
        if name.is_empty() {
            continue;
        }
        // Annotated lets are handled by `bind_annotations`; here only
        // the `= Constructor::…` form matters.
        let window = file.statement_window(line, 0);
        let Some(eq) = window.find('=') else { continue };
        let rhs = &window[eq + 1..];
        let constructed = HASH_SUFFIXES
            .iter()
            .any(|s| rhs.contains(&format!("{s}::")));
        if constructed {
            names.insert(name.to_string());
        }
    }
}

/// Extracts the receiver chain ending just before byte `dot_pos` (the
/// `.` of a method call): `inner.map` for `inner.map.iter()`. Returns
/// the chain's final segment.
pub fn receiver_last_segment(code: &str, dot_pos: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    let mut start = dot_pos;
    while start > 0 {
        let b = bytes[start - 1];
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' {
            start -= 1;
        } else {
            break;
        }
    }
    let chain = &code[start..dot_pos];
    let last = chain.rsplit('.').next()?;
    (!last.is_empty() && !last.as_bytes()[0].is_ascii_digit()).then_some(last)
}

/// For a `for … in <expr> {` line, the iterated expression's final
/// identifier segment when the expression is a plain (possibly
/// referenced) identifier chain: `for (k, v) in &self.map {` → `map`.
pub fn for_loop_iterated_ident(code: &str) -> Option<&str> {
    let for_pos = crate::source::find_words(code, "for").into_iter().next()?;
    let in_rel = code[for_pos..].find(" in ")?;
    let expr_start = for_pos + in_rel + 4;
    let expr_end = code[expr_start..]
        .find('{')
        .map_or(code.len(), |p| expr_start + p);
    let expr = code[expr_start..expr_end].trim();
    let expr = expr.trim_start_matches(['&', '*']).trim_start();
    let expr = expr.strip_prefix("mut ").unwrap_or(expr).trim();
    // Identifier chains only — ranges (`0..n`) and method calls are
    // not direct container iterations (calls are matched separately).
    if expr.is_empty()
        || expr.contains("..")
        || expr.starts_with(|c: char| c.is_ascii_digit())
        || !expr
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
    {
        return None;
    }
    expr.rsplit('.').next().filter(|s| !s.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(text: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/lib.rs".into(), text, &[])
    }

    #[test]
    fn binds_let_annotations_and_fields() {
        let f = file(
            "struct S { cache: Mutex<FxHashMap<u64, u32>>, shards: Box<[Mutex<HashMap<K, V>>]> }\n\
             fn f(m: &FxHashMap<u32, u32>) {\n\
             let mut groups: FxHashMap<Box<[u32]>, u64> = FxHashMap::default();\n\
             let seen = std::collections::HashSet::new();\n\
             let counts: BTreeMap<u32, u32> = BTreeMap::new();\n\
             }\n",
        );
        let b = hash_bindings(&f);
        assert!(b.contains("cache"), "peels Mutex");
        assert!(!b.contains("shards"), "slice wrapper blocks binding");
        assert!(b.contains("m"), "fn param");
        assert!(b.contains("groups"));
        assert!(b.contains("seen"), "constructor let");
        assert!(!b.contains("counts"), "BTreeMap is ordered");
    }

    #[test]
    fn sharded_map_binds() {
        let f = file("struct C { counts: ShardedMap<Vec<A>, Arc<T>, FxBuildHasher> }\n");
        assert!(hash_bindings(&f).contains("counts"));
    }

    #[test]
    fn receiver_chains() {
        let code = "let x = inner.map.iter().min();";
        let dot = code.find(".iter").unwrap();
        assert_eq!(receiver_last_segment(code, dot), Some("map"));
        let code2 = "self.cache.counts.fold(None, |a, b, c| a);";
        let dot2 = code2.find(".fold").unwrap();
        assert_eq!(receiver_last_segment(code2, dot2), Some("counts"));
    }

    #[test]
    fn for_loop_idents() {
        assert_eq!(
            for_loop_iterated_ident("for (k, v) in &self.map {"),
            Some("map")
        );
        assert_eq!(for_loop_iterated_ident("for x in 0..n {"), None);
        assert_eq!(for_loop_iterated_ident("for s in m.values() {"), None);
    }
}
