//! `float-reduction-order` — floating-point accumulation in hash-map
//! iteration order.
//!
//! Float addition is not associative: summing the same multiset of
//! terms in two different orders can differ in the last ulp, and a
//! last-ulp difference at an `alpha` threshold flips a verdict. The
//! workspace's parallel reductions are safe by construction
//! (`map_chunks` returns partials in chunk order, a pure function of
//! `(n, chunk)`) — the residual risk is accumulating floats while
//! walking a hash container, where the term *order* is the container's
//! iteration order. Two shapes are flagged:
//!
//! * a `for` loop over a hash-bound container whose body `+=`/`-=`
//!   into a float accumulator, and
//! * a same-statement chain `m.values().…sum::<f64>()` (or
//!   `fold(0.0…)`/`product`).
//!
//! Fix by sorting the entries first (canonical order), switching the
//! container to `BTreeMap`, or accumulating exactly (integer counts)
//! and converting once.

use super::{push, Rule};
use crate::bindings::{self, hash_bindings};
use crate::source::SourceFile;
use crate::Diagnostic;
use std::collections::BTreeSet;

/// Same-statement float reduction chain markers.
const FLOAT_CHAIN_SINKS: &[&str] = &[
    ".sum::<f64>",
    ".sum::<f32>",
    ".product::<f64>",
    ".product::<f32>",
    ".fold(0.0",
    ".fold(0f64",
    ".fold(0f32",
];

/// Hash-order iteration starters (subset of the iteration rule's list
/// that yields entry streams).
const ITER_METHODS: &[&str] = &[
    "iter()",
    "values()",
    "into_values()",
    "into_iter()",
    "drain(",
];

/// The rule.
pub struct FloatReductionOrder;

impl Rule for FloatReductionOrder {
    fn name(&self) -> &'static str {
        "float-reduction-order"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if file.is_test_or_bench_path() {
            return;
        }
        let bound = hash_bindings(file);
        let floats = float_accumulators(file);
        for line in 0..file.len() {
            if file.in_test_code(line) {
                continue;
            }
            let code = &file.code[line];

            // Same-statement chain: `m.values().map(…).sum::<f64>()`.
            for method in ITER_METHODS {
                let needle = format!(".{method}");
                if let Some(pos) = code.find(&needle) {
                    let Some(recv) = bindings::receiver_last_segment(code, pos) else {
                        continue;
                    };
                    if !bound.contains(recv) {
                        continue;
                    }
                    let window = file.statement_window(line, 0);
                    if let Some(sink) = FLOAT_CHAIN_SINKS.iter().find(|s| window.contains(*s)) {
                        push(
                            out,
                            file,
                            line,
                            pos,
                            self.name(),
                            format!(
                                "float reduction `{}` over `{recv}`'s hash-order \
                                 entries; sort the terms first or accumulate exactly",
                                sink.trim_start_matches('.')
                            ),
                        );
                    }
                }
            }

            // Loop accumulation: `for v in m.values() { acc += …; }`.
            let loops_hash = hash_iter_loop_receiver(code, &bound);
            if let Some(recv) = loops_hash {
                for (body_line, body_code) in loop_body(file, line) {
                    for acc in &floats {
                        let pat_add = format!("{acc} +=");
                        let pat_sub = format!("{acc} -=");
                        let hit = body_code
                            .find(&pat_add)
                            .or_else(|| body_code.find(&pat_sub));
                        if let Some(pos) = hit {
                            if crate::source::word_at(&body_code, pos, acc) {
                                push(
                                    out,
                                    file,
                                    body_line,
                                    pos,
                                    self.name(),
                                    format!(
                                        "float accumulator `{acc}` updated while \
                                         iterating hash container `{recv}`; the sum \
                                         order is the container's iteration order — \
                                         sort the entries first"
                                    ),
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

/// `for … in m.values() {` / `for … in &m {` — the hash-bound receiver
/// iterated by a `for` loop on this line, if any.
fn hash_iter_loop_receiver(code: &str, bound: &crate::bindings::Bindings) -> Option<String> {
    if crate::source::find_words(code, "for").is_empty() || !code.contains(" in ") {
        return None;
    }
    if let Some(ident) = bindings::for_loop_iterated_ident(code) {
        if bound.contains(ident) {
            return Some(ident.to_string());
        }
    }
    for method in ITER_METHODS {
        let needle = format!(".{method}");
        if let Some(pos) = code.find(&needle) {
            if let Some(recv) = bindings::receiver_last_segment(code, pos) {
                if bound.contains(recv) {
                    return Some(recv.to_string());
                }
            }
        }
    }
    None
}

/// Lines of the brace-matched body of the loop opening on `line`.
fn loop_body(file: &SourceFile, line: usize) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut opened = false;
    for l in line..file.len() {
        for ch in file.code[l].chars() {
            match ch {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if l > line {
            out.push((l, file.code[l].clone()));
        }
        if opened && depth <= 0 {
            break;
        }
    }
    out
}

/// Identifiers declared as float accumulators: `let mut x = 0.0`,
/// `let mut x: f64`, `let mut x = 0f32;`.
fn float_accumulators(file: &SourceFile) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in 0..file.len() {
        let code = &file.code[line];
        for pos in crate::source::find_words(code, "let") {
            let rest = code[pos + 3..].trim_start();
            let Some(rest) = rest.strip_prefix("mut ") else {
                continue;
            };
            let rest = rest.trim_start();
            let name_end = rest
                .find(|c: char| !(c.is_alphanumeric() || c == '_'))
                .unwrap_or(rest.len());
            let name = &rest[..name_end];
            if name.is_empty() {
                continue;
            }
            let after = rest[name_end..].trim_start();
            let is_float = if let Some(ann) = after.strip_prefix(':') {
                let t = ann.trim_start();
                t.starts_with("f64") || t.starts_with("f32")
            } else if let Some(rhs) = after.strip_prefix('=') {
                let t = rhs.trim_start();
                float_literal(t)
            } else {
                false
            };
            if is_float {
                out.insert(name.to_string());
            }
        }
    }
    out
}

/// True when `t` starts with a float literal (`0.0`, `1.5f64`, `0f32`).
fn float_literal(t: &str) -> bool {
    let digits = t.chars().take_while(|c| c.is_ascii_digit()).count();
    if digits == 0 {
        return false;
    }
    let rest = &t[digits..];
    rest.starts_with('.') && rest[1..].starts_with(|c: char| c.is_ascii_digit())
        || rest.starts_with("f64")
        || rest.starts_with("f32")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::run_rule;

    const ACCEPT: &str = include_str!("../../fixtures/float-reduction-order/accept.rs");
    const REJECT: &str = include_str!("../../fixtures/float-reduction-order/reject.rs");

    #[test]
    fn accept_fixture_is_clean() {
        let diags = run_rule(&FloatReductionOrder, "crates/stats/src/x.rs", ACCEPT);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn reject_fixture_fires() {
        let diags = run_rule(&FloatReductionOrder, "crates/stats/src/x.rs", REJECT);
        assert!(diags.len() >= 2, "got {}: {diags:?}", diags.len());
        assert!(diags.iter().all(|d| d.rule == "float-reduction-order"));
    }
}
