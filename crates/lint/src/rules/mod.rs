//! The rule set.
//!
//! Each rule is one module with unit fixtures under
//! `crates/lint/fixtures/<rule>/{accept,reject}.rs`. Rules receive the
//! lexed [`SourceFile`] and append [`Diagnostic`]s; suppression via
//! `// lint:allow(<rule>) — <reason>` is applied centrally in
//! [`check_file`] so every rule honours the same mechanism.

use crate::source::SourceFile;
use crate::Diagnostic;

pub mod float_order;
pub mod nondet_iter;
pub mod raw_instant;
pub mod unsafe_safety;
pub mod unseeded_rng;
pub mod unwrap_serve;
pub mod wall_clock;

/// A single lint rule.
pub trait Rule {
    /// Kebab-case rule name (the `lint:allow` target).
    fn name(&self) -> &'static str;
    /// Appends diagnostics for `file` (allow filtering happens in the
    /// caller).
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>);
}

/// Every rule, in report order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(nondet_iter::NondeterministicIteration),
        Box::new(unseeded_rng::UnseededRng),
        Box::new(wall_clock::WallClockInOutput),
        Box::new(raw_instant::RawInstantOutsideObs),
        Box::new(unsafe_safety::UnsafeWithoutSafetyComment),
        Box::new(unwrap_serve::UnwrapInRequestPath),
        Box::new(float_order::FloatReductionOrder),
    ]
}

/// The rule names (for allow-directive validation).
pub fn names() -> Vec<&'static str> {
    all().iter().map(|r| r.name()).collect()
}

/// Runs every rule over `file`, honouring allow directives, and
/// appends the file's own directive-syntax diagnostics.
pub fn check_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    out.extend(file.meta_diags.iter().cloned());
    let mut raw = Vec::new();
    for rule in all() {
        rule.check(file, &mut raw);
    }
    out.extend(
        raw.into_iter()
            .filter(|d| !file.allowed(d.line - 1, d.rule)),
    );
}

/// Shared helper: push a diagnostic at 0-based `line` and byte `col`.
pub(crate) fn push(
    out: &mut Vec<Diagnostic>,
    file: &SourceFile,
    line: usize,
    col: usize,
    rule: &'static str,
    message: String,
) {
    out.push(Diagnostic {
        path: file.path.clone(),
        line: line + 1,
        col: col + 1,
        rule,
        message,
    });
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Parses fixture text under a synthetic in-scope path and runs one
    /// rule over it.
    pub fn run_rule(rule: &dyn Rule, path: &str, text: &str) -> Vec<Diagnostic> {
        let names = super::names();
        let file = SourceFile::parse(path.to_string(), text, &names);
        let mut raw = Vec::new();
        rule.check(&file, &mut raw);
        raw.into_iter()
            .filter(|d| !file.allowed(d.line - 1, d.rule))
            .collect()
    }
}
