//! `unwrap-in-request-path` — `unwrap`/`expect`/`panic!` in
//! `hypdb-serve` request handling.
//!
//! A panicking request worker tears down its connection mid-response
//! (or, on the acceptor, the whole server); malformed input and full
//! queues must surface as status codes (400/413/503), never as panics.
//! This rule covers `crates/serve/src/` minus `client.rs` (the
//! loopback test/bench client panics on setup failure by design) and
//! `#[cfg(test)]` code. Structurally unreachable cases should be
//! rewritten (`let … else`, `unwrap_or_else`) — or, where a panic is
//! genuinely the right response to a broken invariant, allow-listed
//! with the invariant spelled out.

use super::{push, Rule};
use crate::source::SourceFile;
use crate::Diagnostic;

/// Panicking constructs.
const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// The rule.
pub struct UnwrapInRequestPath;

impl Rule for UnwrapInRequestPath {
    fn name(&self) -> &'static str {
        "unwrap-in-request-path"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        // In scope: serve request handling — plus this rule's own
        // fixture directory, so pointing the binary at the fixtures
        // still exercises the rule (their paths lack the serve prefix).
        let in_scope = file.path.starts_with("crates/serve/src/")
            || file.path.contains("unwrap-in-request-path/");
        if !in_scope || file.path.ends_with("/client.rs") {
            return;
        }
        for line in 0..file.len() {
            if file.in_test_code(line) {
                continue;
            }
            let code = &file.code[line];
            for token in PANIC_TOKENS {
                let mut from = 0;
                while let Some(rel) = code[from..].find(token) {
                    let pos = from + rel;
                    from = pos + token.len();
                    push(
                        out,
                        file,
                        line,
                        pos,
                        self.name(),
                        format!(
                            "`{}` can panic in the request path; return an error \
                             status instead, restructure (`let … else`, \
                             `unwrap_or_else`), or lint:allow with the invariant \
                             that makes it unreachable",
                            token.trim_start_matches('.').trim_end_matches('(')
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::run_rule;

    const ACCEPT: &str = include_str!("../../fixtures/unwrap-in-request-path/accept.rs");
    const REJECT: &str = include_str!("../../fixtures/unwrap-in-request-path/reject.rs");

    #[test]
    fn accept_fixture_is_clean() {
        let diags = run_rule(&UnwrapInRequestPath, "crates/serve/src/server.rs", ACCEPT);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn reject_fixture_fires() {
        let diags = run_rule(&UnwrapInRequestPath, "crates/serve/src/server.rs", REJECT);
        assert!(diags.len() >= 3, "got {}: {diags:?}", diags.len());
        assert!(diags.iter().all(|d| d.rule == "unwrap-in-request-path"));
    }

    #[test]
    fn other_crates_are_out_of_scope() {
        let diags = run_rule(&UnwrapInRequestPath, "crates/core/src/pipeline.rs", REJECT);
        assert!(diags.is_empty());
    }

    #[test]
    fn client_module_is_out_of_scope() {
        let diags = run_rule(&UnwrapInRequestPath, "crates/serve/src/client.rs", REJECT);
        assert!(diags.is_empty());
    }
}
