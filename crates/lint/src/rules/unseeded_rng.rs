//! `unseeded-rng` — any RNG construction not derived from a config
//! seed or SplitMix64 chunk derivation.
//!
//! Every random draw in the workspace flows from `HypDbConfig`'s seed
//! through `hypdb_exec::seed`'s per-chunk SplitMix64 streams; that is
//! what makes permutation-test verdicts reproducible at any thread
//! count. Entropy-based constructors (`thread_rng`, `from_entropy`,
//! `OsRng`, `rand::random`) and explicitly random hasher states
//! (`RandomState::new`) reintroduce run-to-run variance, as does
//! seeding from wall-clock time or the process id. Literal seeds
//! (`seed_from_u64(42)`) are fine — they are deterministic.

use super::{push, Rule};
use crate::source::{find_words, SourceFile};
use crate::Diagnostic;

/// Constructors that draw from ambient entropy.
const ENTROPY_SOURCES: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "getrandom",
];

/// Path-ish tokens (matched without word boundaries on the left).
const ENTROPY_CALLS: &[&str] = &["rand::random(", "RandomState::new("];

/// Tokens that make a `seed_from_u64` argument time/process-derived.
const VOLATILE_SEED_SOURCES: &[&str] = &[
    "now()",
    "elapsed",
    "as_nanos",
    "as_micros",
    "as_millis",
    "process::id",
    "UNIX_EPOCH",
];

/// The rule.
pub struct UnseededRng;

impl Rule for UnseededRng {
    fn name(&self) -> &'static str {
        "unseeded-rng"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for line in 0..file.len() {
            let code = &file.code[line];
            for token in ENTROPY_SOURCES {
                for pos in find_words(code, token) {
                    push(
                        out,
                        file,
                        line,
                        pos,
                        self.name(),
                        format!(
                            "`{token}` draws from ambient entropy; construct RNGs from \
                             the config seed (`seed_from_u64`) or a SplitMix64 chunk \
                             derivation (`hypdb_exec::seed`)"
                        ),
                    );
                }
            }
            for token in ENTROPY_CALLS {
                if let Some(pos) = code.find(token) {
                    push(
                        out,
                        file,
                        line,
                        pos,
                        self.name(),
                        format!(
                            "`{}` is randomly keyed per process; derive state from the \
                             config seed instead",
                            token.trim_end_matches('(')
                        ),
                    );
                }
            }
            if let Some(pos) = code.find("seed_from_u64(") {
                let window = file.statement_window(line, 0);
                if let Some(src) = VOLATILE_SEED_SOURCES.iter().find(|s| window.contains(*s)) {
                    push(
                        out,
                        file,
                        line,
                        pos,
                        self.name(),
                        format!(
                            "seed derived from `{src}` varies per run; derive it from \
                             the config seed or a SplitMix64 chunk stream"
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::run_rule;

    const ACCEPT: &str = include_str!("../../fixtures/unseeded-rng/accept.rs");
    const REJECT: &str = include_str!("../../fixtures/unseeded-rng/reject.rs");

    #[test]
    fn accept_fixture_is_clean() {
        let diags = run_rule(&UnseededRng, "crates/stats/src/x.rs", ACCEPT);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn reject_fixture_fires() {
        let diags = run_rule(&UnseededRng, "crates/stats/src/x.rs", REJECT);
        assert!(diags.len() >= 3, "got {}: {diags:?}", diags.len());
        assert!(diags.iter().all(|d| d.rule == "unseeded-rng"));
    }
}
