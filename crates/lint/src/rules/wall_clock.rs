//! `wall-clock-in-output` — `Instant::now`/`SystemTime::now` in code
//! that contributes to report or wire bytes.
//!
//! The online/offline byte-identity invariant (`hypdb serve` bodies ==
//! CLI bodies, pinned in CI) only holds because every timing that
//! reaches a serialized report is zeroed before emission
//! (`hypdb_core::wire`). A wall-clock read is legitimate for *control
//! plane* purposes — connection deadlines, admission timeouts, bench
//! measurement — but each such site must say so with a reasoned
//! `lint:allow(wall-clock-in-output)`, so new clock reads can't drift
//! into output paths unreviewed. Benches, tests, and examples are out
//! of scope (they measure; they don't serve bytes).

use super::{push, Rule};
use crate::source::SourceFile;
use crate::Diagnostic;

/// Clock reads that vary per run.
const CLOCK_TOKENS: &[&str] = &["Instant::now", "SystemTime::now"];

/// The rule.
pub struct WallClockInOutput;

impl Rule for WallClockInOutput {
    fn name(&self) -> &'static str {
        "wall-clock-in-output"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if file.is_test_or_bench_path() {
            return;
        }
        for line in 0..file.len() {
            if file.in_test_code(line) {
                continue;
            }
            let code = &file.code[line];
            for token in CLOCK_TOKENS {
                if let Some(pos) = code.find(token) {
                    push(
                        out,
                        file,
                        line,
                        pos,
                        self.name(),
                        format!(
                            "`{token}` varies per run; keep wall-clock reads out of \
                             report/wire bytes (timings must be zeroed before \
                             serialization), or lint:allow with the control-plane \
                             reason"
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::run_rule;

    const ACCEPT: &str = include_str!("../../fixtures/wall-clock-in-output/accept.rs");
    const REJECT: &str = include_str!("../../fixtures/wall-clock-in-output/reject.rs");

    #[test]
    fn accept_fixture_is_clean() {
        let diags = run_rule(&WallClockInOutput, "crates/serve/src/x.rs", ACCEPT);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn reject_fixture_fires() {
        let diags = run_rule(&WallClockInOutput, "crates/serve/src/x.rs", REJECT);
        assert!(diags.len() >= 2, "got {}: {diags:?}", diags.len());
        assert!(diags.iter().all(|d| d.rule == "wall-clock-in-output"));
    }

    #[test]
    fn bench_crate_is_out_of_scope() {
        let diags = run_rule(&WallClockInOutput, "crates/bench/src/lib.rs", REJECT);
        assert!(diags.is_empty());
    }
}
