//! `unsafe-without-safety-comment` — every `unsafe` block/fn and every
//! `extern` FFI block must carry a `// SAFETY:` justification.
//!
//! The workspace is `forbid(unsafe_code)` in all but one crate; the one
//! exception (`hypdb-serve`'s `signal(2)` FFI) is only acceptable while
//! its justification stays attached to the code. This rule makes that
//! attachment machine-checked: an `unsafe` keyword (or an `extern "…" {`
//! declaration block — the FFI trust boundary itself) without a
//! `SAFETY:` comment on the same or the five preceding lines is a
//! diagnostic. Applies everywhere, tests included — unsound test code
//! is still unsound.

use super::{push, Rule};
use crate::source::{find_words, SourceFile};
use crate::Diagnostic;

/// How far above the `unsafe` token a `SAFETY:` comment may sit.
const LOOKBACK_LINES: usize = 5;

/// The rule.
pub struct UnsafeWithoutSafetyComment;

impl Rule for UnsafeWithoutSafetyComment {
    fn name(&self) -> &'static str {
        "unsafe-without-safety-comment"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for line in 0..file.len() {
            let code = &file.code[line];
            for pos in find_words(code, "unsafe") {
                // `unsafe_code` in attributes is excluded by the word
                // boundary; `unsafe impl`/`unsafe fn`/`unsafe {` all
                // need justification.
                if !file.comment_lookback(line, LOOKBACK_LINES, "SAFETY:") {
                    push(
                        out,
                        file,
                        line,
                        pos,
                        self.name(),
                        "`unsafe` without a `// SAFETY:` justification within the \
                         5 preceding lines"
                            .to_string(),
                    );
                }
            }
            // FFI declaration blocks: `extern "C" {` (fn-pointer types
            // and `extern "C" fn` definitions declare no foreign
            // symbols and are excluded).
            if let Some(pos) = code.find("extern \"") {
                let after_quote = &code[pos + "extern \"".len()..];
                let Some(close) = after_quote.find('"') else {
                    continue;
                };
                let rest = after_quote[close + 1..].trim_start();
                let opens_block =
                    rest.starts_with('{') || (rest.is_empty() && next_code_opens_brace(file, line));
                if opens_block && !file.comment_lookback(line, LOOKBACK_LINES, "SAFETY:") {
                    push(
                        out,
                        file,
                        line,
                        pos,
                        self.name(),
                        "FFI `extern` block without a `// SAFETY:` justification for \
                         trusting the declared signatures"
                            .to_string(),
                    );
                }
            }
        }
    }
}

/// True when the next non-empty code line starts with `{`.
fn next_code_opens_brace(file: &SourceFile, line: usize) -> bool {
    (line + 1..file.len())
        .find(|&l| !file.code[l].trim().is_empty())
        .is_some_and(|l| file.code[l].trim_start().starts_with('{'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::run_rule;

    const ACCEPT: &str = include_str!("../../fixtures/unsafe-without-safety-comment/accept.rs");
    const REJECT: &str = include_str!("../../fixtures/unsafe-without-safety-comment/reject.rs");

    #[test]
    fn accept_fixture_is_clean() {
        let diags = run_rule(&UnsafeWithoutSafetyComment, "crates/serve/src/x.rs", ACCEPT);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn reject_fixture_fires() {
        let diags = run_rule(&UnsafeWithoutSafetyComment, "crates/serve/src/x.rs", REJECT);
        assert!(diags.len() >= 2, "got {}: {diags:?}", diags.len());
        assert!(diags
            .iter()
            .all(|d| d.rule == "unsafe-without-safety-comment"));
    }

    #[test]
    fn forbid_attribute_does_not_fire() {
        let diags = run_rule(
            &UnsafeWithoutSafetyComment,
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\nfn main() {}\n",
        );
        assert!(diags.is_empty());
    }
}
