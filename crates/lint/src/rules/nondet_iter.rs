//! `nondeterministic-iteration` — iterating a `HashMap`/`HashSet`
//! (including `hypdb_exec::ShardedMap` folds/drains) in code that
//! contributes to report or wire bytes.
//!
//! Hash-map iteration order is a function of the hasher and the
//! insertion history: with `RandomState` it changes across *runs*, with
//! a fixed hasher (`FxHashMap`) it still changes whenever the insertion
//! path changes (a cache hit vs a fresh scan, a different shard layout)
//! — exactly the configuration axes the workspace promises never alter
//! a single output byte. An iteration is accepted when the surrounding
//! statement (plus two look-ahead lines) shows an order-insensitive
//! sink — a `sort` of the drained items, an exact count/len/integer
//! sum, a min/max under a total order, or a collect into an ordered
//! `BTreeMap`/`BTreeSet`. Everything else must either be rewritten
//! (sort before emit, or switch to `BTreeMap`) or carry a reasoned
//! `lint:allow(nondeterministic-iteration)`.
//!
//! Test-only code (`#[cfg(test)]`, `tests/`, `examples/`, benches) is
//! out of scope: it produces no report bytes.

use super::{push, Rule};
use crate::bindings::{self, hash_bindings};
use crate::source::SourceFile;
use crate::Diagnostic;

/// Methods that visit entries in hash order.
const ITER_METHODS: &[&str] = &[
    "iter()",
    "iter_mut()",
    "keys()",
    "values()",
    "values_mut()",
    "into_iter()",
    "into_keys()",
    "into_values()",
    "drain(",
    "fold(",
    "retain(",
];

/// Statement-window tokens that make hash-order iteration harmless:
/// sorted afterwards, reduced exactly/commutatively, or re-ordered into
/// an ordered container.
const ORDER_INSENSITIVE_SINKS: &[&str] = &[
    ".sort",
    "sort_unstable",
    "sort_by",
    ".count()",
    ".len()",
    ".sum::<u",
    ".sum::<i",
    ".sum::<usize",
    ".min()",
    ".max()",
    ".min_by(",
    ".max_by(",
    ".min_by_key(",
    ".max_by_key(",
    ".all(",
    ".any(",
    "BTreeMap",
    "BTreeSet",
];

/// The rule.
pub struct NondeterministicIteration;

impl Rule for NondeterministicIteration {
    fn name(&self) -> &'static str {
        "nondeterministic-iteration"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if file.is_test_or_bench_path() {
            return;
        }
        let bound = hash_bindings(file);
        for line in 0..file.len() {
            if file.in_test_code(line) {
                continue;
            }
            let code = &file.code[line];
            // Method-call iteration: `m.values()`, `self.cache.counts.fold(`.
            for method in ITER_METHODS {
                let needle = format!(".{method}");
                let mut from = 0;
                while let Some(rel) = code[from..].find(&needle) {
                    let pos = from + rel;
                    from = pos + needle.len();
                    let Some(recv) = bindings::receiver_last_segment(code, pos) else {
                        continue;
                    };
                    if !bound.contains(recv) {
                        continue;
                    }
                    if self.sink_exempt(file, line) {
                        continue;
                    }
                    let m = method.trim_end_matches('(').trim_end_matches("()");
                    push(
                        out,
                        file,
                        line,
                        pos,
                        self.name(),
                        format!(
                            "`{recv}.{m}` visits a hash container in nondeterministic \
                             order; sort before emitting, reduce order-insensitively, \
                             use a BTreeMap, or lint:allow with a reason"
                        ),
                    );
                }
            }
            // Direct `for … in &m` iteration.
            if let Some(ident) = bindings::for_loop_iterated_ident(code) {
                if bound.contains(ident) && !self.sink_exempt(file, line) {
                    let col = code.find("for").unwrap_or(0);
                    push(
                        out,
                        file,
                        line,
                        col,
                        self.name(),
                        format!(
                            "`for … in {ident}` visits a hash container in \
                             nondeterministic order; sort before emitting, reduce \
                             order-insensitively, use a BTreeMap, or lint:allow with \
                             a reason"
                        ),
                    );
                }
            }
        }
    }
}

impl NondeterministicIteration {
    fn sink_exempt(&self, file: &SourceFile, line: usize) -> bool {
        let window = file.statement_window(line, 2);
        ORDER_INSENSITIVE_SINKS.iter().any(|s| window.contains(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::run_rule;

    const ACCEPT: &str = include_str!("../../fixtures/nondeterministic-iteration/accept.rs");
    const REJECT: &str = include_str!("../../fixtures/nondeterministic-iteration/reject.rs");

    #[test]
    fn accept_fixture_is_clean() {
        let diags = run_rule(&NondeterministicIteration, "crates/core/src/x.rs", ACCEPT);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn reject_fixture_fires() {
        let diags = run_rule(&NondeterministicIteration, "crates/core/src/x.rs", REJECT);
        assert!(
            diags.len() >= 3,
            "expected ≥ 3 findings, got {}: {diags:?}",
            diags.len()
        );
        assert!(diags.iter().all(|d| d.rule == "nondeterministic-iteration"));
    }

    #[test]
    fn test_paths_are_out_of_scope() {
        let diags = run_rule(&NondeterministicIteration, "tests/determinism.rs", REJECT);
        assert!(diags.is_empty());
    }
}
