//! `raw-instant-outside-obs` — `std::time::Instant` mentioned anywhere
//! but `hypdb-obs`.
//!
//! `wall-clock-in-output` polices clock *reads*; this rule polices the
//! clock *type*. The workspace's timing surface is funnelled through
//! `hypdb_obs::{Tick, Deadline}` so that every place capable of
//! observing wall time is reviewable in one crate (and so histogram /
//! trace plumbing can't be bypassed by ad-hoc `Instant` arithmetic).
//! Any `Instant` outside `crates/obs/` — even a type annotation or a
//! `use` — should be rewritten in terms of `Tick` (elapsed-time
//! measurement) or `Deadline` (timeout arithmetic). Tests, benches,
//! and examples measure rather than serve bytes and are out of scope.

use super::{push, Rule};
use crate::source::SourceFile;
use crate::Diagnostic;

/// The rule.
pub struct RawInstantOutsideObs;

/// True when `code[pos..pos + len]` stands alone as an identifier
/// (not a slice of a longer one like `InstantFoo`).
fn ident_bounded(code: &str, pos: usize, len: usize) -> bool {
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let before_ok = !code[..pos].chars().next_back().is_some_and(is_ident);
    let after_ok = !code[pos + len..].chars().next().is_some_and(is_ident);
    before_ok && after_ok
}

impl Rule for RawInstantOutsideObs {
    fn name(&self) -> &'static str {
        "raw-instant-outside-obs"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if file.is_test_or_bench_path() || file.path.starts_with("crates/obs/") {
            return;
        }
        const TOKEN: &str = "Instant";
        for line in 0..file.len() {
            if file.in_test_code(line) {
                continue;
            }
            let code = &file.code[line];
            let mut from = 0;
            while let Some(off) = code[from..].find(TOKEN) {
                let pos = from + off;
                if ident_bounded(code, pos, TOKEN.len()) {
                    push(
                        out,
                        file,
                        line,
                        pos,
                        self.name(),
                        "raw `Instant` outside `hypdb-obs`; use \
                         `hypdb_obs::Tick` for elapsed-time measurement or \
                         `hypdb_obs::Deadline` for timeout arithmetic, so \
                         every wall-clock surface stays reviewable in the \
                         obs crate"
                            .to_string(),
                    );
                    // One diagnostic per line is enough to force the fix.
                    break;
                }
                from = pos + TOKEN.len();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::run_rule;

    const ACCEPT: &str = include_str!("../../fixtures/raw-instant-outside-obs/accept.rs");
    const REJECT: &str = include_str!("../../fixtures/raw-instant-outside-obs/reject.rs");

    #[test]
    fn accept_fixture_is_clean() {
        let diags = run_rule(&RawInstantOutsideObs, "crates/serve/src/x.rs", ACCEPT);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn reject_fixture_fires() {
        let diags = run_rule(&RawInstantOutsideObs, "crates/serve/src/x.rs", REJECT);
        assert!(diags.len() >= 3, "got {}: {diags:?}", diags.len());
        assert!(diags.iter().all(|d| d.rule == "raw-instant-outside-obs"));
    }

    #[test]
    fn obs_crate_is_the_sanctioned_home() {
        let diags = run_rule(&RawInstantOutsideObs, "crates/obs/src/clock.rs", REJECT);
        assert!(diags.is_empty());
    }

    #[test]
    fn bench_and_test_paths_are_out_of_scope() {
        for path in [
            "crates/bench/src/lib.rs",
            "tests/serve.rs",
            "crates/core/benches/b.rs",
        ] {
            let diags = run_rule(&RawInstantOutsideObs, path, REJECT);
            assert!(diags.is_empty(), "{path}: {diags:?}");
        }
    }

    #[test]
    fn longer_identifiers_do_not_match() {
        let diags = run_rule(
            &RawInstantOutsideObs,
            "crates/core/src/x.rs",
            "struct InstantaneousRate(f64);\nfn instant_ok() {}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
