//! `hypdb-lint` CLI: `hypdb-lint --check <path>`.
//!
//! Prints the sorted diagnostic report to stdout (byte-identical across
//! runs over the same tree — no timestamps, no ordering jitter) and a
//! one-line summary to stderr. Exit codes: `0` clean, `1` diagnostics
//! found, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: hypdb-lint [--check] [PATH]   (default PATH: .)");
    eprintln!("       hypdb-lint --list-rules");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut path: Option<PathBuf> = None;
    let mut list_rules = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            // --check is the only mode; accepted explicitly so the CI
            // invocation reads as intent.
            "--check" => {}
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                return usage();
            }
            _ if arg.starts_with('-') => {
                eprintln!("hypdb-lint: unknown flag `{arg}`");
                return usage();
            }
            _ if path.is_none() => path = Some(PathBuf::from(arg)),
            _ => return usage(),
        }
    }
    if list_rules {
        for name in hypdb_lint::rules::names() {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    let root = path.unwrap_or_else(|| PathBuf::from("."));
    match hypdb_lint::run(&root) {
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            if diags.is_empty() {
                eprintln!("hypdb-lint: clean ({})", root.display());
                ExitCode::SUCCESS
            } else {
                eprintln!("hypdb-lint: {} diagnostic(s)", diags.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("hypdb-lint: {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
