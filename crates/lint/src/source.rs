//! Lexical model of one Rust source file.
//!
//! The analyzer is token/line-level, not a full parser: each file is
//! split into a *code* view (string and char literals blanked to
//! spaces, comments blanked to spaces — column positions survive) and a
//! *comment* view (the text of every comment, per line). Rules match
//! tokens against the code view only, so a `thread_rng` inside a string
//! literal or a doc comment never fires, and consult the comment view
//! for the things that legitimately live in comments: `// SAFETY:`
//! justifications and `// lint:allow(<rule>) — <reason>` suppressions.
//!
//! The file also carries a per-line `#[cfg(test)]` mask (brace-matched
//! over the code view) so rules can exclude test-only code, and the
//! parsed allow directives with their attachment lines: a trailing
//! allow suppresses its own line, a standalone comment line suppresses
//! the next line that contains code.

use crate::Diagnostic;

/// How an `// lint:allow(...)` directive must be written: rule names in
/// parentheses (comma-separated for several), then a non-empty reason.
pub const ALLOW_SYNTAX: &str = "// lint:allow(<rule>[, <rule>]) — <reason>";

/// One analyzed source file.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (display + scoping).
    pub path: String,
    /// Per-line code view: literals and comments blanked to spaces.
    pub code: Vec<String>,
    /// Per-line comment text (line + block comments, `//`/`/*` stripped).
    pub comments: Vec<String>,
    /// True for lines inside a brace-matched `#[cfg(test)]` item.
    pub test_mask: Vec<bool>,
    /// Rules suppressed per line (0-based), via allow directives.
    allows: Vec<Vec<String>>,
    /// Malformed allow directives found while parsing (reported as
    /// `invalid-allow` diagnostics — the allow syntax is itself
    /// machine-checked).
    pub meta_diags: Vec<Diagnostic>,
}

impl SourceFile {
    /// Lexes `text` into the code/comment views and parses directives.
    /// `rule_names` validates `lint:allow` targets.
    pub fn parse(path: String, text: &str, rule_names: &[&str]) -> SourceFile {
        let (code, comments) = split_code_and_comments(text);
        let test_mask = mask_cfg_test(&code);
        let mut file = SourceFile {
            path,
            code,
            comments,
            test_mask,
            allows: Vec::new(),
            meta_diags: Vec::new(),
        };
        file.collect_allows(rule_names);
        file
    }

    /// Number of lines.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when the file holds no lines.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// True when `rule` is suppressed on 0-based `line`.
    pub fn allowed(&self, line: usize, rule: &str) -> bool {
        self.allows
            .get(line)
            .is_some_and(|rules| rules.iter().any(|r| r == rule))
    }

    /// True when 0-based `line` is inside `#[cfg(test)]` code.
    pub fn in_test_code(&self, line: usize) -> bool {
        self.test_mask.get(line).copied().unwrap_or(false)
    }

    /// True for paths that never contribute to report/wire bytes:
    /// integration tests, examples, benches, and the bench crate.
    pub fn is_test_or_bench_path(&self) -> bool {
        let p = &self.path;
        let in_dir =
            |dir: &str| p.starts_with(&format!("{dir}/")) || p.contains(&format!("/{dir}/"));
        in_dir("tests") || in_dir("examples") || in_dir("benches") || p.starts_with("crates/bench/")
    }

    /// The code of lines `[from, from + n)` joined with spaces — the
    /// look-ahead window rules use for statement-level context.
    pub fn window(&self, from: usize, n: usize) -> String {
        let to = (from + n).min(self.code.len());
        self.code[from..to].join(" ")
    }

    /// The current statement starting at `line` (scans forward to the
    /// first `;`, capped), plus `extra` following lines. Used to spot
    /// order-insensitive sinks like a `sort` right after a drain.
    pub fn statement_window(&self, line: usize, extra: usize) -> String {
        let mut end = line;
        let cap = (line + 8).min(self.code.len().saturating_sub(1));
        while end < cap && !self.code[end].contains(';') {
            end += 1;
        }
        self.window(line, end - line + 1 + extra)
    }

    /// True when the comments on lines `[line - back, line]` contain
    /// `needle` (e.g. `SAFETY:` justification look-back).
    pub fn comment_lookback(&self, line: usize, back: usize, needle: &str) -> bool {
        let from = line.saturating_sub(back);
        self.comments[from..=line.min(self.comments.len() - 1)]
            .iter()
            .any(|c| c.contains(needle))
    }

    fn collect_allows(&mut self, rule_names: &[&str]) {
        self.allows = vec![Vec::new(); self.code.len()];
        for line in 0..self.comments.len() {
            // A directive is a whole comment starting with `lint:allow`
            // (`// lint:allow(...)`). Prose that merely mentions the
            // syntax — doc comments, rule messages — never anchors
            // there (doc comment text starts with `/` or `!`).
            let comment = self.comments[line].clone();
            let Some(rest) = comment.trim_start().strip_prefix("lint:allow") else {
                continue;
            };
            let Some(open) = rest.find('(') else {
                self.invalid_allow(line, "missing `(<rule>)` list");
                continue;
            };
            let Some(close) = rest[open..].find(')') else {
                self.invalid_allow(line, "unterminated rule list");
                continue;
            };
            let names: Vec<String> = rest[open + 1..open + close]
                .split(',')
                .map(|n| n.trim().to_string())
                .filter(|n| !n.is_empty())
                .collect();
            let reason = rest[open + close + 1..]
                .trim_start_matches([' ', '\t', '—', '–', '-', ':', '.'])
                .trim();
            if names.is_empty() {
                self.invalid_allow(line, "empty rule list");
                continue;
            }
            let mut valid = Vec::new();
            for name in names {
                if rule_names.contains(&name.as_str()) {
                    valid.push(name);
                } else {
                    self.invalid_allow(line, &format!("unknown rule `{name}`"));
                }
            }
            if reason.len() < 8 {
                self.invalid_allow(
                    line,
                    "an allow must state a reason (≥ 8 chars) after the rule list",
                );
                continue;
            }
            if valid.is_empty() {
                continue;
            }
            // Trailing allow → its own line; standalone comment
            // line → the next line containing code.
            let target = if self.code[line].trim().is_empty() {
                (line + 1..self.code.len()).find(|&l| !self.code[l].trim().is_empty())
            } else {
                Some(line)
            };
            if let Some(t) = target {
                self.allows[t].extend(valid);
            }
        }
    }

    fn invalid_allow(&mut self, line: usize, what: &str) {
        self.meta_diags.push(Diagnostic {
            path: self.path.clone(),
            line: line + 1,
            col: 1,
            rule: "invalid-allow",
            message: format!("malformed lint:allow directive ({what}); write `{ALLOW_SYNTAX}`"),
        });
    }
}

/// Splits source text into per-line (code, comment) views. Code keeps
/// every non-literal, non-comment character at its original column;
/// string/char-literal interiors and comment spans become spaces.
fn split_code_and_comments(text: &str) -> (Vec<String>, Vec<String>) {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        CharLit,
    }
    let mut code = vec![String::new()];
    let mut comments = vec![String::new()];
    let chars: Vec<char> = text.chars().collect();
    let mut st = St::Code;
    let mut i = 0usize;
    let mut prev_ident = false; // previous code char was ident-ish (for raw-string detection)

    macro_rules! cur_code {
        () => {
            code.last_mut().expect("one line always present")
        };
    }
    macro_rules! cur_comment {
        () => {
            comments.last_mut().expect("one line always present")
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if st == St::LineComment {
                st = St::Code;
            }
            code.push(String::new());
            comments.push(String::new());
            prev_ident = false;
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    st = St::LineComment;
                    cur_code!().push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(1);
                    cur_code!().push_str("  ");
                    i += 2;
                } else if c == '"' {
                    st = St::Str;
                    cur_code!().push('"');
                    i += 1;
                } else if (c == 'r' || c == 'b')
                    && !prev_ident
                    && raw_string_hashes(&chars, i).is_some()
                {
                    let (hashes, skip) = raw_string_hashes(&chars, i).expect("checked above");
                    st = St::RawStr(hashes);
                    for _ in 0..skip {
                        cur_code!().push(' ');
                    }
                    cur_code!().push('"');
                    i += skip + 1;
                } else if c == 'b' && !prev_ident && next == Some('"') {
                    st = St::Str;
                    cur_code!().push_str(" \"");
                    i += 2;
                } else if c == '\'' {
                    // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                    if is_lifetime(&chars, i) {
                        cur_code!().push('\'');
                        prev_ident = false;
                        i += 1;
                    } else {
                        st = St::CharLit;
                        cur_code!().push('\'');
                        i += 1;
                    }
                    continue;
                } else {
                    prev_ident = c.is_alphanumeric() || c == '_';
                    cur_code!().push(c);
                    i += 1;
                    continue;
                }
                prev_ident = false;
            }
            St::LineComment => {
                cur_comment!().push(c);
                cur_code!().push(' ');
                i += 1;
            }
            St::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    cur_code!().push_str("  ");
                    i += 2;
                    if depth == 1 {
                        st = St::Code;
                    } else {
                        st = St::BlockComment(depth - 1);
                    }
                } else if c == '/' && next == Some('*') {
                    cur_code!().push_str("  ");
                    cur_comment!().push_str("/*");
                    i += 2;
                    st = St::BlockComment(depth + 1);
                } else {
                    cur_comment!().push(c);
                    cur_code!().push(' ');
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    // Keep escaped newlines (line continuations) on the
                    // normal newline path so line counts stay aligned.
                    if chars.get(i + 1) == Some(&'\n') {
                        cur_code!().push(' ');
                        i += 1;
                    } else {
                        cur_code!().push_str("  ");
                        i += 2;
                    }
                } else if c == '"' {
                    cur_code!().push('"');
                    st = St::Code;
                    i += 1;
                } else {
                    cur_code!().push(' ');
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    cur_code!().push('"');
                    for _ in 0..hashes {
                        cur_code!().push(' ');
                    }
                    i += 1 + hashes as usize;
                    st = St::Code;
                } else {
                    cur_code!().push(' ');
                    i += 1;
                }
            }
            St::CharLit => {
                if c == '\\' {
                    cur_code!().push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    cur_code!().push('\'');
                    st = St::Code;
                    i += 1;
                } else {
                    cur_code!().push(' ');
                    i += 1;
                }
            }
        }
    }
    (code, comments)
}

/// At `chars[i] == 'r'` (or `'b'` for `br`), returns `(hash_count,
/// chars_before_quote)` when a raw string literal starts here.
fn raw_string_hashes(chars: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i + 1;
    if chars[i] == 'b' {
        if chars.get(j) != Some(&'r') {
            return None;
        }
        j += 1;
    }
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some((hashes, j - i))
}

/// True when the `"` at `chars[i]` is followed by `hashes` `#`s.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// True when the `'` at `chars[i]` starts a lifetime, not a char
/// literal: `'ident` not closed by a `'` right after the identifier.
fn is_lifetime(chars: &[char], i: usize) -> bool {
    let Some(&first) = chars.get(i + 1) else {
        return false;
    };
    if !(first.is_alphabetic() || first == '_') {
        return false;
    }
    let mut j = i + 2;
    while chars
        .get(j)
        .is_some_and(|c| c.is_alphanumeric() || *c == '_')
    {
        j += 1;
    }
    chars.get(j) != Some(&'\'')
}

/// Marks lines covered by a brace-matched `#[cfg(test)]` item.
fn mask_cfg_test(code: &[String]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut line = 0;
    while line < code.len() {
        if !code[line].contains("#[cfg(test)]") {
            line += 1;
            continue;
        }
        // The attribute must introduce a braced item within a few
        // lines (`mod tests {`); otherwise mark just the attribute.
        let has_brace = (line..(line + 4).min(code.len())).any(|l| code[l].contains('{'));
        if !has_brace {
            mask[line] = true;
            line += 1;
            continue;
        }
        // Find the item's opening brace (same line or a later one) and
        // brace-match to its close over the code view.
        let mut depth = 0i32;
        let mut opened = false;
        let mut end = line;
        'scan: for (l, line_code) in code.iter().enumerate().skip(line) {
            for ch in line_code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
                if opened && depth == 0 {
                    end = l;
                    break 'scan;
                }
            }
            end = l;
        }
        for m in mask.iter_mut().take(end + 1).skip(line) {
            *m = true;
        }
        line = end + 1;
    }
    mask
}

/// True when `haystack[pos..]` starts `needle` on a word boundary on
/// both sides (identifier characters delimit words).
pub fn word_at(haystack: &str, pos: usize, needle: &str) -> bool {
    let bytes = haystack.as_bytes();
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    if pos > 0 && is_word(bytes[pos - 1]) {
        return false;
    }
    let end = pos + needle.len();
    if end < bytes.len() && is_word(bytes[end]) {
        return false;
    }
    haystack[pos..].starts_with(needle)
}

/// All word-boundary occurrences of `needle` in `line` (byte offsets).
pub fn find_words(line: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = line[from..].find(needle) {
        let pos = from + rel;
        if word_at(line, pos, needle) {
            out.push(pos);
        }
        from = pos + needle.len().max(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/lib.rs".into(), text, &["rule-a", "rule-b"])
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = parse("let x = \"HashMap::new()\"; // HashMap::new()\n");
        assert!(!f.code[0].contains("HashMap"));
        assert!(f.comments[0].contains("HashMap"));
        // Columns survive blanking.
        assert_eq!(f.code[0].find("let"), Some(0));
        assert_eq!(
            f.code[0].find(';'),
            Some("let x = \"HashMap::new()\"".len())
        );
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let f = parse("let r = r#\"Instant::now()\"#; let c = 'x'; let lt: &'static str = \"\";\n");
        assert!(!f.code[0].contains("Instant"));
        assert!(f.code[0].contains("'static"), "lifetimes stay code");
    }

    #[test]
    fn block_comments_span_lines() {
        let f = parse("a /* one\n two */ b\n");
        assert_eq!(f.code[0].trim(), "a");
        assert_eq!(f.code[1].trim(), "b");
        assert!(f.comments[0].contains("one"));
        assert!(f.comments[1].contains("two"));
    }

    #[test]
    fn cfg_test_mask_covers_module() {
        let f = parse("fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n");
        assert!(!f.in_test_code(0));
        assert!(f.in_test_code(1));
        assert!(f.in_test_code(3));
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(5));
    }

    #[test]
    fn trailing_allow_binds_to_its_line() {
        let f = parse("foo(); // lint:allow(rule-a) — a considered reason\nbar();\n");
        assert!(f.allowed(0, "rule-a"));
        assert!(!f.allowed(1, "rule-a"));
        assert!(!f.allowed(0, "rule-b"));
        assert!(f.meta_diags.is_empty());
    }

    #[test]
    fn standalone_allow_binds_to_next_code_line() {
        let f = parse("// lint:allow(rule-a, rule-b) — shared considered reason\nfoo();\n");
        assert!(f.allowed(1, "rule-a"));
        assert!(f.allowed(1, "rule-b"));
    }

    #[test]
    fn allow_without_reason_is_invalid() {
        let f = parse("foo(); // lint:allow(rule-a)\n");
        assert!(!f.allowed(0, "rule-a"));
        assert_eq!(f.meta_diags.len(), 1);
        assert_eq!(f.meta_diags[0].rule, "invalid-allow");
    }

    #[test]
    fn allow_of_unknown_rule_is_invalid() {
        let f = parse("foo(); // lint:allow(nope) — some long reason here\n");
        assert!(!f.allowed(0, "nope"));
        assert_eq!(f.meta_diags.len(), 1);
    }

    #[test]
    fn prose_mention_is_not_a_directive() {
        // Doc comments describing the syntax must not parse as allows
        // (nor as malformed ones).
        let f = parse("//! suppress with `lint:allow(<rule>)` and a reason\nfoo();\n");
        assert!(f.meta_diags.is_empty());
        assert!(!f.allowed(1, "rule-a"));
    }

    #[test]
    fn word_boundaries() {
        assert!(word_at("x unsafe {", 2, "unsafe"));
        assert!(!word_at("forbid(unsafe_code)", 7, "unsafe"));
        assert_eq!(
            find_words("unsafe unsafe_code unsafe", "unsafe"),
            vec![0, 19]
        );
    }

    #[test]
    fn statement_window_reaches_semicolon_plus_extra() {
        let f = parse("let v: Vec<_> = m\n    .into_iter()\n    .collect();\nv.sort();\n");
        let w = f.statement_window(0, 2);
        assert!(w.contains("collect"));
        assert!(w.contains("sort"));
    }
}
