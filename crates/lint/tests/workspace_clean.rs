//! Meta-test: the workspace itself is lint-clean.
//!
//! Every rule violation in workspace source must be either fixed or
//! carry a reasoned `lint:allow`; this test turns a new violation into
//! a red `cargo test` even before the CI gate runs the binary.

use std::path::Path;

#[test]
fn workspace_has_no_diagnostics() {
    // crates/lint/tests → workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let diags = hypdb_lint::run(&root).expect("workspace scan succeeds");
    assert!(
        diags.is_empty(),
        "workspace is not lint-clean ({} diagnostic(s)):\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n"),
    );
}

#[test]
fn report_is_deterministic() {
    // Two scans of the same tree must produce byte-identical output —
    // the analyzer is subject to its own discipline.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let a = hypdb_lint::run(&root).expect("first scan");
    let b = hypdb_lint::run(&root).expect("second scan");
    let render =
        |ds: &[hypdb_lint::Diagnostic]| ds.iter().map(|d| d.to_string() + "\n").collect::<String>();
    assert_eq!(render(&a), render(&b));
}
