// Reject fixture: undocumented unsafe and FFI trust boundaries.

extern "C" {
    fn getpid() -> i32;
}

fn read_pid() -> i32 {
    unsafe { getpid() }
}

unsafe fn transmute_len(v: &[u8]) -> usize {
    v.len()
}
