// Accept fixture: every unsafe block/fn and FFI block justified.

// SAFETY: `signal` is the documented libc entry point; the handler
// performs one async-signal-safe atomic store and never unwinds.
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

fn install(handler: extern "C" fn(i32)) {
    // SAFETY: the handler is an `extern "C" fn(i32)` that only stores
    // into an atomic — the canonical async-signal-safe action.
    unsafe {
        signal(15, handler);
    }
}

// The forbid attribute mentions unsafe_code without being unsafe.
#[allow(unsafe_code)]
fn marker() {}
