// Accept fixture: hash containers used with order-insensitive sinks,
// sorted emission, ordered containers, or a reasoned allow.
use std::collections::{BTreeMap, HashMap};

fn sorted_emission(m: &HashMap<u32, u64>) -> Vec<(u32, u64)> {
    let mut out: Vec<(u32, u64)> = m.iter().map(|(k, v)| (*k, *v)).collect();
    out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    out
}

fn exact_reductions(m: &HashMap<u32, u64>) -> (u64, usize, Option<u32>) {
    let total: u64 = m.values().sum::<u64>();
    let n = m.len();
    let min_key = m.keys().min().copied();
    (total, n, min_key)
}

fn ordered_container(m: &BTreeMap<u32, u64>) -> Vec<u64> {
    // BTreeMap iteration is key-ordered: no finding.
    m.values().copied().collect()
}

fn documented_exception(m: &HashMap<u32, u64>) -> u64 {
    // lint:allow(nondeterministic-iteration) — XOR is commutative and associative, so any visit order folds to the same value
    m.values().fold(0, |acc, v| acc ^ v)
}

fn collect_into_ordered(m: &HashMap<u32, u64>) -> BTreeMap<u32, u64> {
    m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<_, _>>()
}
