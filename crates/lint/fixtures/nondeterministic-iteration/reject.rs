// Reject fixture: hash-order entry streams escaping into output.
use std::collections::{HashMap, HashSet};

fn emits_in_hash_order(m: &HashMap<u32, u64>) -> Vec<(u32, u64)> {
    // Finding: collected in iteration order, never sorted.
    m.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>()
}

fn prints_keys(s: &HashSet<String>) {
    for k in s {
        println!("{k}");
    }
}

fn drains_unordered(m: &mut HashMap<u32, u64>) -> Vec<u64> {
    m.drain().map(|(_, v)| v).collect::<Vec<_>>()
}

struct Cache {
    entries: HashMap<u64, String>,
}

impl Cache {
    fn first_value(&self) -> Option<&String> {
        // Finding: `values()` order decides which entry wins.
        self.entries.values().next()
    }
}
