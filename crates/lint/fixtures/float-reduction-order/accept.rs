// Accept fixture: float reductions over canonical (sorted) orders or
// exact integer accumulation converted once.
use std::collections::HashMap;

fn sorted_then_summed(m: &HashMap<u32, f64>) -> f64 {
    let mut entries: Vec<(u32, f64)> = m.iter().map(|(k, v)| (*k, *v)).collect();
    entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let mut total = 0.0;
    for (_, v) in &entries {
        total += v;
    }
    total
}

fn exact_counts(m: &HashMap<u32, u64>) -> f64 {
    // Integer sums are exact and commutative; one conversion at the end.
    let total: u64 = m.values().sum::<u64>();
    total as f64
}
