// Accept fixture: float reductions over canonical (sorted) orders or
// exact integer accumulation converted once.
use std::collections::HashMap;

fn sorted_then_summed(m: &HashMap<u32, f64>) -> f64 {
    let mut entries: Vec<(u32, f64)> = m.iter().map(|(k, v)| (*k, *v)).collect();
    entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let mut total = 0.0;
    for (_, v) in &entries {
        total += v;
    }
    total
}

fn exact_counts(m: &HashMap<u32, u64>) -> f64 {
    // Integer sums are exact and commutative; one conversion at the end.
    let total: u64 = m.values().sum::<u64>();
    total as f64
}

// Staged permutation screening: hits accumulate as exact integers over
// deterministic chunk spans; the hit-rate classification does single
// float divisions of exact integer counts (IEEE rounding of one
// division is monotone, so no reduction order exists to get wrong).
fn staged_screen(chunk_hits: &[u64], budget: u64, alpha: f64) -> Option<bool> {
    let mut hits: u64 = 0;
    let mut done: u64 = 0;
    for &h in chunk_hits {
        hits += h;
        done += 16;
        let independent = hits as f64 / budget as f64 > alpha;
        let dependent = (hits + (budget - done)) as f64 / budget as f64 <= alpha;
        if independent || dependent {
            return Some(independent);
        }
    }
    None
}
