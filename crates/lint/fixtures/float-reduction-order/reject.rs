// Reject fixture: float accumulation in hash-iteration order.
use std::collections::HashMap;

fn loop_accumulation(m: &HashMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for v in m.values() {
        total += v.ln();
    }
    total
}

fn chained_sum(m: &HashMap<u32, f64>) -> f64 {
    m.values().map(|v| v * 2.0).sum::<f64>()
}

// Staged screening gone wrong: the per-group permutation statistics
// accumulate as floats in hash-iteration order, so the screening
// verdict depends on the map's layout.
fn staged_screen_hash_order(groups: &HashMap<u32, f64>, alpha: f64) -> bool {
    let mut stat = 0.0;
    for weight in groups.values() {
        stat += weight * 0.5;
    }
    stat > alpha
}
