// Reject fixture: float accumulation in hash-iteration order.
use std::collections::HashMap;

fn loop_accumulation(m: &HashMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for v in m.values() {
        total += v.ln();
    }
    total
}

fn chained_sum(m: &HashMap<u32, f64>) -> f64 {
    m.values().map(|v| v * 2.0).sum::<f64>()
}
