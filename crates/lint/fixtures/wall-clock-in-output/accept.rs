// Accept fixture: wall-clock reads confined to the control plane, each
// carrying the reasoned allow; report structs hold zeroed timings.
use std::time::{Duration, Instant};

struct Report {
    // Timings are zeroed by the wire layer before serialization.
    elapsed_ms: u64,
}

fn connection_deadline(timeout_ms: u64) -> Instant {
    // lint:allow(wall-clock-in-output) — connection deadline is control plane; it bounds I/O and never reaches response bytes
    Instant::now() + Duration::from_millis(timeout_ms)
}

fn zeroed_report() -> Report {
    Report { elapsed_ms: 0 }
}
