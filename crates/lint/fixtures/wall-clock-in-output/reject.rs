// Reject fixture: clock reads flowing toward output bytes.
use std::time::{Instant, SystemTime, UNIX_EPOCH};

struct Report {
    elapsed_ms: u64,
    stamp: u64,
}

fn timed_report() -> Report {
    let t0 = Instant::now();
    let elapsed_ms = t0.elapsed().as_millis() as u64;
    let stamp = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .as_secs();
    Report { elapsed_ms, stamp }
}
