// Reject fixture: panicking constructs in request handling.

fn handle(body: Option<&str>) -> String {
    let raw = body.unwrap();
    let len: usize = raw.len().to_string().parse().expect("digits");
    if len > 1 << 20 {
        panic!("body too large");
    }
    match raw.chars().next() {
        Some(c) => c.to_string(),
        None => unreachable!("checked above"),
    }
}
