// Accept fixture: request handling that degrades to status codes and
// restructures away panicking calls.
use std::sync::{Mutex, MutexGuard};

struct Inner {
    hits: u64,
}

struct State {
    inner: Mutex<Inner>,
}

impl State {
    fn lock(&self) -> MutexGuard<'_, Inner> {
        // Poisoning is ignored: counters stay structurally valid.
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

fn parse_len(header: Option<&str>) -> Result<usize, &'static str> {
    let Some(raw) = header else {
        return Err("411 Length Required");
    };
    raw.trim().parse::<usize>().map_err(|_| "400 Bad Request")
}

fn respond(state: &State, body: Option<String>) -> String {
    state.lock().hits += 1;
    match body {
        Some(b) => b,
        None => "503 Service Unavailable".to_string(),
    }
}
