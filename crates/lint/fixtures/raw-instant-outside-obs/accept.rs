// Accept fixture: timing flows through the obs crate's wrappers, so no
// raw `Instant` appears outside `crates/obs/`.
use hypdb_obs::{Deadline, Tick};
use std::time::Duration;

fn timed_work(timeout_ms: u64) -> (f64, bool) {
    let deadline = Deadline::after(Duration::from_millis(timeout_ms));
    let tick = Tick::now();
    let expired = deadline.expired();
    (tick.elapsed_secs(), expired)
}
