// Reject fixture: raw `Instant` plumbing that bypasses the obs crate —
// the import, the type position, and the construction each fire.
use std::time::{Duration, Instant};

struct Pending {
    enqueued: Instant,
}

fn deadline(timeout_ms: u64) -> Instant {
    Instant::now() + Duration::from_millis(timeout_ms)
}
