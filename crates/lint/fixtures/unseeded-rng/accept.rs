// Accept fixture: every RNG derives from the config seed or a
// SplitMix64 chunk stream; literal seeds are deterministic.
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Config {
    seed: u64,
}

fn from_config(cfg: &Config) -> StdRng {
    StdRng::seed_from_u64(cfg.seed)
}

fn per_chunk(master: u64, chunk: usize) -> StdRng {
    let derived = hypdb_exec::seed::chunk_seed(master, chunk);
    StdRng::seed_from_u64(derived)
}

fn pinned_fixture_seed() -> StdRng {
    StdRng::seed_from_u64(0x48_7970_4442)
}

// Staged escalation resumes the *same* stream: every chunk of every
// stage derives its RNG from the statement seed and the chunk index,
// so a screened prefix is bit-for-bit the prefix of the full run.
fn staged_chunk_rng(statement_seed: u64, chunk: usize) -> StdRng {
    let derived = hypdb_exec::seed::chunk_seed(statement_seed, chunk);
    StdRng::seed_from_u64(derived)
}

fn escalation_resumes_prefix(statement_seed: u64, from_chunk: usize, to_chunk: usize) -> u64 {
    let mut hits = 0;
    for chunk in from_chunk..to_chunk {
        let mut rng = staged_chunk_rng(statement_seed, chunk);
        hits += u64::from(rng.gen::<u8>() & 1);
    }
    hits
}
