// Accept fixture: every RNG derives from the config seed or a
// SplitMix64 chunk stream; literal seeds are deterministic.
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Config {
    seed: u64,
}

fn from_config(cfg: &Config) -> StdRng {
    StdRng::seed_from_u64(cfg.seed)
}

fn per_chunk(master: u64, chunk: usize) -> StdRng {
    let derived = hypdb_exec::seed::chunk_seed(master, chunk);
    StdRng::seed_from_u64(derived)
}

fn pinned_fixture_seed() -> StdRng {
    StdRng::seed_from_u64(0x48_7970_4442)
}
