// Reject fixture: ambient-entropy and time-derived RNG state.
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ambient() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen::<f64>()
}

fn entropy_constructor() -> StdRng {
    StdRng::from_entropy()
}

fn time_seeded() -> StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos() as u64;
    StdRng::seed_from_u64(nanos)
}

fn random_hasher() -> std::collections::hash_map::RandomState {
    std::collections::hash_map::RandomState::new()
}
