// Reject fixture: ambient-entropy and time-derived RNG state.
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ambient() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen::<f64>()
}

fn entropy_constructor() -> StdRng {
    StdRng::from_entropy()
}

fn time_seeded() -> StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos() as u64;
    StdRng::seed_from_u64(nanos)
}

fn random_hasher() -> std::collections::hash_map::RandomState {
    std::collections::hash_map::RandomState::new()
}

// Staged escalation that reseeds from ambient entropy: the escalated
// suffix would no longer be the suffix of the single-stage stream, so
// verdicts would differ between staged and single-stage runs.
fn escalation_reseeded_from_entropy(from_chunk: usize, to_chunk: usize) -> u64 {
    let mut hits = 0;
    for _ in from_chunk..to_chunk {
        let mut rng = StdRng::from_entropy();
        hits += u64::from(rng.gen::<u8>() & 1);
    }
    hits
}
