//! Recursive-descent parser for the OLAP dialect.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query     := SELECT items FROM ident [WHERE expr] [GROUP BY cols]
//! items     := item (',' item)*
//! item      := AVG '(' ident ')' | COUNT '(' '*' ')'
//!            | COUNT '(' DISTINCT ident ')' | ident
//! expr      := or_expr
//! or_expr   := and_expr (OR and_expr)*
//! and_expr  := unary (AND unary)*
//! unary     := NOT unary | '(' expr ')' | predicate
//! predicate := ident '=' literal | ident ('<>'|'!=') literal
//!            | ident IN '(' literal (',' literal)* ')'
//! literal   := string | number
//! ```

use crate::ast::{Expr, Literal, SelectItem, Statement};
use crate::lexer::{tokenize, LexError, Token};
use std::fmt;

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Lexical error.
    Lex(LexError),
    /// Unexpected token (or end of input) with an expectation message.
    Unexpected {
        /// What was found (`None` = end of input).
        found: Option<Token>,
        /// What was expected.
        expected: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected { found, expected } => match found {
                Some(t) => write!(f, "unexpected `{t}`, expected {expected}"),
                None => write!(f, "unexpected end of input, expected {expected}"),
            },
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, expected: &str) -> Result<T, ParseError> {
        Err(ParseError::Unexpected {
            found: self.peek().cloned(),
            expected: expected.to_string(),
        })
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => {
                self.pos += 1;
                Ok(())
            }
            _ => self.error(&format!("keyword {kw}")),
        }
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw)) && {
            self.pos += 1;
            true
        }
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            self.error(what)
        }
    }

    /// Identifier that is not one of the reserved clause keywords.
    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) if !is_reserved(s) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => self.error("identifier"),
        }
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        match self.next() {
            Some(Token::Str(s)) => Ok(Literal(s)),
            Some(Token::Num(s)) => Ok(Literal(s)),
            other => {
                self.pos = self.pos.saturating_sub(usize::from(other.is_some()));
                self.error("literal")
            }
        }
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case("avg") {
                self.pos += 1;
                self.expect(&Token::LParen, "(")?;
                let col = self.ident()?;
                self.expect(&Token::RParen, ")")?;
                return Ok(SelectItem::Avg(col));
            }
            if s.eq_ignore_ascii_case("count") {
                self.pos += 1;
                self.expect(&Token::LParen, "(")?;
                if self.peek() == Some(&Token::Star) {
                    self.pos += 1;
                    self.expect(&Token::RParen, ")")?;
                    return Ok(SelectItem::CountStar);
                }
                self.keyword("DISTINCT")?;
                let col = self.ident()?;
                self.expect(&Token::RParen, ")")?;
                return Ok(SelectItem::CountDistinct(col));
            }
        }
        Ok(SelectItem::Column(self.ident()?))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.try_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary()?;
        while self.try_keyword("AND") {
            let right = self.unary()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.try_keyword("NOT") {
            return Ok(Expr::Not(Box::new(self.unary()?)));
        }
        if self.peek() == Some(&Token::LParen) {
            self.pos += 1;
            let e = self.expr()?;
            self.expect(&Token::RParen, ")")?;
            return Ok(e);
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<Expr, ParseError> {
        let col = self.ident()?;
        match self.peek() {
            Some(Token::Eq) => {
                self.pos += 1;
                Ok(Expr::Eq(col, self.literal()?))
            }
            Some(Token::NotEq) => {
                self.pos += 1;
                Ok(Expr::NotEq(col, self.literal()?))
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("IN") => {
                self.pos += 1;
                self.expect(&Token::LParen, "(")?;
                let mut lits = vec![self.literal()?];
                while self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                    lits.push(self.literal()?);
                }
                self.expect(&Token::RParen, ")")?;
                Ok(Expr::In(col, lits))
            }
            _ => self.error("=, <>, or IN"),
        }
    }
}

fn is_reserved(s: &str) -> bool {
    const RESERVED: &[&str] = &[
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "AND", "OR", "NOT", "IN", "AVG", "COUNT",
        "DISTINCT", "HAVING",
    ];
    RESERVED.iter().any(|kw| s.eq_ignore_ascii_case(kw))
}

/// Parses one statement.
pub fn parse_query(input: &str) -> Result<Statement, ParseError> {
    let mut p = Parser {
        tokens: tokenize(input)?,
        pos: 0,
    };
    p.keyword("SELECT")?;
    let mut items = vec![p.select_item()?];
    while p.peek() == Some(&Token::Comma) {
        p.pos += 1;
        items.push(p.select_item()?);
    }
    p.keyword("FROM")?;
    let from = p.ident()?;
    let where_clause = if p.try_keyword("WHERE") {
        Some(p.expr()?)
    } else {
        None
    };
    let mut group_by = Vec::new();
    if p.try_keyword("GROUP") {
        p.keyword("BY")?;
        group_by.push(p.ident()?);
        while p.peek() == Some(&Token::Comma) {
            p.pos += 1;
            group_by.push(p.ident()?);
        }
    }
    if p.peek().is_some() {
        return p.error("end of input");
    }
    Ok(Statement {
        items,
        from,
        where_clause,
        group_by,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_query() {
        // The Fig 1 query (modulo clause ordering, which the paper's
        // listing typesets loosely).
        let q = parse_query(
            "SELECT Carrier, avg(Delayed) FROM FlightData \
             WHERE Carrier IN ('AA','UA') AND Airport IN ('COS','MFE','MTJ','ROC') \
             GROUP BY Carrier",
        )
        .unwrap();
        assert_eq!(q.from, "FlightData");
        assert_eq!(q.group_by, vec!["Carrier"]);
        assert_eq!(q.avg_columns(), vec!["Delayed"]);
        match &q.where_clause {
            Some(Expr::And(l, r)) => {
                assert!(matches!(**l, Expr::In(ref c, ref v) if c == "Carrier" && v.len() == 2));
                assert!(matches!(**r, Expr::In(ref c, ref v) if c == "Airport" && v.len() == 4));
            }
            other => panic!("unexpected where: {other:?}"),
        }
    }

    #[test]
    fn keywords_case_insensitive() {
        let q = parse_query("select avg(y) from t group by g").unwrap();
        assert_eq!(q.items.len(), 1);
        assert_eq!(q.group_by, vec!["g"]);
    }

    #[test]
    fn numeric_literals_allowed() {
        let q = parse_query("SELECT avg(y) FROM t WHERE x = 1 AND w IN (2, 3)").unwrap();
        match q.where_clause.unwrap() {
            Expr::And(l, r) => {
                assert_eq!(*l, Expr::Eq("x".into(), Literal("1".into())));
                assert_eq!(
                    *r,
                    Expr::In("w".into(), vec![Literal("2".into()), Literal("3".into())])
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn or_not_parens() {
        let q = parse_query("SELECT g FROM t WHERE NOT (a = '1' OR b = '2')").unwrap();
        assert!(matches!(q.where_clause, Some(Expr::Not(_))));
    }

    #[test]
    fn count_forms() {
        let q = parse_query("SELECT count(*), count(DISTINCT T) FROM t").unwrap();
        assert_eq!(
            q.items,
            vec![SelectItem::CountStar, SelectItem::CountDistinct("T".into())]
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_query("SELECT a FROM t extra").is_err());
    }

    #[test]
    fn missing_from_rejected() {
        let err = parse_query("SELECT a WHERE x = 1").unwrap_err();
        assert!(err.to_string().contains("FROM"), "{err}");
    }

    #[test]
    fn reserved_words_not_identifiers() {
        assert!(parse_query("SELECT select FROM t").is_err());
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let q = parse_query("SELECT g FROM t WHERE a = '1' OR b = '2' AND c = '3'").unwrap();
        // OR(a, AND(b, c))
        match q.where_clause.unwrap() {
            Expr::Or(l, r) => {
                assert!(matches!(*l, Expr::Eq(..)));
                assert!(matches!(*r, Expr::And(..)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn display_parse_roundtrip() {
        let q1 = parse_query(
            "SELECT Carrier, avg(Delayed) FROM F WHERE Airport IN ('A','B') GROUP BY Carrier",
        )
        .unwrap();
        let q2 = parse_query(&q1.to_string()).unwrap();
        assert_eq!(q1, q2);
    }
}
