//! Abstract syntax for the OLAP dialect.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A literal value. Numbers are kept in their written form: HypDB data
/// is categorical, so `1` and `'1'` denote the same category.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Literal(pub String);

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render as a quoted SQL string literal.
        write!(f, "'{}'", self.0.replace('\'', "''"))
    }
}

/// One item of a SELECT list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectItem {
    /// A bare grouping column.
    Column(String),
    /// `avg(col)`.
    Avg(String),
    /// `count(*)`.
    CountStar,
    /// `count(DISTINCT col)`.
    CountDistinct(String),
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Column(c) => write!(f, "{c}"),
            SelectItem::Avg(c) => write!(f, "avg({c})"),
            SelectItem::CountStar => write!(f, "count(*)"),
            SelectItem::CountDistinct(c) => write!(f, "count(DISTINCT {c})"),
        }
    }
}

/// Boolean expressions of the WHERE clause.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Expr {
    /// `col = lit`.
    Eq(String, Literal),
    /// `col <> lit`.
    NotEq(String, Literal),
    /// `col IN (lits…)`.
    In(String, Vec<Literal>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Eq(c, l) => write!(f, "{c} = {l}"),
            Expr::NotEq(c, l) => write!(f, "{c} <> {l}"),
            Expr::In(c, ls) => {
                write!(f, "{c} IN (")?;
                for (i, l) in ls.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{l}")?;
                }
                write!(f, ")")
            }
            Expr::And(a, b) => write!(f, "{a} AND {b}"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(e) => write!(f, "NOT ({e})"),
        }
    }
}

/// A parsed `SELECT … FROM … [WHERE …] [GROUP BY …]` statement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Statement {
    /// SELECT list.
    pub items: Vec<SelectItem>,
    /// Source relation name.
    pub from: String,
    /// Optional WHERE clause.
    pub where_clause: Option<Expr>,
    /// GROUP BY columns (possibly empty).
    pub group_by: Vec<String>,
}

impl Statement {
    /// Columns aggregated with `avg`.
    pub fn avg_columns(&self) -> Vec<&str> {
        self.items
            .iter()
            .filter_map(|i| match i {
                SelectItem::Avg(c) => Some(c.as_str()),
                _ => None,
            })
            .collect()
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " FROM {}", self.from)?;
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY {}", self.group_by.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_structure() {
        let stmt = Statement {
            items: vec![
                SelectItem::Column("Carrier".into()),
                SelectItem::Avg("Delayed".into()),
            ],
            from: "FlightData".into(),
            where_clause: Some(Expr::And(
                Box::new(Expr::In(
                    "Carrier".into(),
                    vec![Literal("AA".into()), Literal("UA".into())],
                )),
                Box::new(Expr::Eq("Airport".into(), Literal("ROC".into()))),
            )),
            group_by: vec!["Carrier".into()],
        };
        let s = stmt.to_string();
        assert_eq!(
            s,
            "SELECT Carrier, avg(Delayed) FROM FlightData WHERE Carrier IN ('AA', 'UA') \
             AND Airport = 'ROC' GROUP BY Carrier"
        );
    }

    #[test]
    fn literal_escapes_quotes() {
        assert_eq!(Literal("O'Hare".into()).to_string(), "'O''Hare'");
    }

    #[test]
    fn avg_columns_extracted() {
        let stmt = Statement {
            items: vec![
                SelectItem::Column("g".into()),
                SelectItem::Avg("a".into()),
                SelectItem::Avg("b".into()),
                SelectItem::CountStar,
            ],
            from: "t".into(),
            where_clause: None,
            group_by: vec!["g".into()],
        };
        assert_eq!(stmt.avg_columns(), vec!["a", "b"]);
    }
}
