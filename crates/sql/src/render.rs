//! SQL generation for the rewritten (de-biased) query of Listing 2/3.
//!
//! HypDB's resolution step evaluates the adjustment formula internally,
//! but the paper's interface also *shows* the analyst the rewritten SQL
//! so it can be run on any engine. This module renders that text.

use crate::ast::Statement;
use serde::{Deserialize, Serialize};

/// Everything needed to render `Q^rw` (Listing 2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RewriteSpec {
    /// Source relation.
    pub from: String,
    /// Treatment attribute `T`.
    pub treatment: String,
    /// Outcome attributes `Y_1…Y_e`.
    pub outcomes: Vec<String>,
    /// Extra grouping attributes `X` (the query's non-treatment
    /// group-by columns).
    pub grouping: Vec<String>,
    /// Adjustment set `Z` (covariates, plus mediators for direct
    /// effects).
    pub adjustment: Vec<String>,
    /// WHERE clause text (already rendered), if any.
    pub where_sql: Option<String>,
    /// Number of distinct treatment values required per block by the
    /// overlap / exact-matching guard (2 for a binary comparison).
    pub distinct_treatments: usize,
}

fn comma(items: &[String]) -> String {
    items.join(", ")
}

/// Renders the rewritten query of Listing 2: block averages weighted by
/// block probabilities, with blocks lacking overlap pruned by the
/// `HAVING count(DISTINCT T) = k` guard.
pub fn render_rewritten(spec: &RewriteSpec) -> String {
    let t = &spec.treatment;
    let mut block_group = vec![t.clone()];
    block_group.extend(spec.adjustment.iter().cloned());
    block_group.extend(spec.grouping.iter().cloned());

    let mut weight_group: Vec<String> = spec.adjustment.to_vec();
    weight_group.extend(spec.grouping.iter().cloned());

    let avg_list = spec
        .outcomes
        .iter()
        .enumerate()
        .map(|(i, y)| format!("avg({y}) AS Avg{}", i + 1))
        .collect::<Vec<_>>()
        .join(", ");
    let sum_list = spec
        .outcomes
        .iter()
        .enumerate()
        .map(|(i, _)| format!("sum(Avg{} * W) AS AdjAvg{}", i + 1, i + 1))
        .collect::<Vec<_>>()
        .join(", ");
    let where_line = spec
        .where_sql
        .as_ref()
        .map(|w| format!("  WHERE {w}\n"))
        .unwrap_or_default();
    let join_cond = weight_group
        .iter()
        .map(|c| format!("Blocks.{c} = Weights.{c}"))
        .collect::<Vec<_>>()
        .join(" AND\n        ");
    let select_group = {
        let mut g = vec![format!("Blocks.{t}")];
        g.extend(spec.grouping.iter().map(|c| format!("Blocks.{c}")));
        g.join(", ")
    };

    format!(
        "WITH Blocks AS (\n\
         \x20 SELECT {bg}, {avg_list}\n\
         \x20 FROM {from}\n\
         {where_line}\
         \x20 GROUP BY {bg}\n\
         ),\n\
         Weights AS (\n\
         \x20 SELECT {wg}, count(*) * 1.0 / sum(count(*)) OVER () AS W\n\
         \x20 FROM {from}\n\
         {where_line}\
         \x20 GROUP BY {wg}\n\
         \x20 HAVING count(DISTINCT {t}) = {k}\n\
         )\n\
         SELECT {select_group}, {sum_list}\n\
         FROM Blocks, Weights\n\
         WHERE {join_cond}\n\
         GROUP BY {select_group}",
        bg = comma(&block_group),
        wg = comma(&weight_group),
        from = spec.from,
        k = spec.distinct_treatments,
    )
}

/// Renders a [`Statement`] back to SQL (delegates to its `Display`).
pub fn render_query(stmt: &Statement) -> String {
    stmt.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn flight_spec() -> RewriteSpec {
        RewriteSpec {
            from: "FlightData".into(),
            treatment: "Carrier".into(),
            outcomes: vec!["Delayed".into()],
            grouping: vec![],
            adjustment: vec![
                "Airport".into(),
                "Year".into(),
                "Day".into(),
                "Month".into(),
            ],
            where_sql: Some(
                "Carrier IN ('AA', 'UA') AND Airport IN ('COS', 'MFE', 'MTJ', 'ROC')".into(),
            ),
            distinct_treatments: 2,
        }
    }

    #[test]
    fn renders_listing3_shape() {
        let sql = render_rewritten(&flight_spec());
        // Structure of Listing 3: Blocks CTE, Weights CTE with the exact
        // matching guard, weighted-average outer query.
        assert!(sql.contains("WITH Blocks AS ("), "{sql}");
        assert!(sql.contains("GROUP BY Carrier, Airport, Year, Day, Month"));
        assert!(sql.contains("HAVING count(DISTINCT Carrier) = 2"));
        assert!(sql.contains("sum(Avg1 * W)"));
        assert!(sql.contains("Blocks.Airport = Weights.Airport"));
        assert!(sql.contains("GROUP BY Blocks.Carrier"));
        assert!(sql.contains("WHERE Carrier IN ('AA', 'UA')"));
    }

    #[test]
    fn multiple_outcomes_render_numbered_sums() {
        let mut spec = flight_spec();
        spec.outcomes = vec!["Delayed".into(), "Cancelled".into()];
        let sql = render_rewritten(&spec);
        assert!(sql.contains("avg(Delayed) AS Avg1"));
        assert!(sql.contains("avg(Cancelled) AS Avg2"));
        assert!(sql.contains("sum(Avg2 * W) AS AdjAvg2"));
    }

    #[test]
    fn grouping_attributes_join_blocks_and_weights() {
        let mut spec = flight_spec();
        spec.grouping = vec!["Quarter".into()];
        let sql = render_rewritten(&spec);
        assert!(sql.contains("Blocks.Quarter = Weights.Quarter"));
        assert!(sql.contains("GROUP BY Blocks.Carrier, Blocks.Quarter"));
    }

    #[test]
    fn no_where_clause_renders_clean() {
        let mut spec = flight_spec();
        spec.where_sql = None;
        let sql = render_rewritten(&spec);
        assert!(!sql.contains("WHERE Carrier IN"));
        assert!(sql.contains("FROM FlightData"));
    }

    #[test]
    fn render_query_roundtrip() {
        let q = parse_query("SELECT g, avg(y) FROM t WHERE x = '1' GROUP BY g").unwrap();
        assert_eq!(render_query(&q), q.to_string());
        assert!(parse_query(&render_query(&q)).is_ok());
    }
}
