//! A small SQL front end for the paper's OLAP dialect.
//!
//! HypDB's interface is SQL (Listing 1): group-by-average queries with
//! conjunctive WHERE clauses. This crate provides
//!
//! * [`lexer`] / [`parser`] — tokeniser and recursive-descent parser for
//!   `SELECT {col | avg(col) | count(*)} … FROM t [WHERE …]
//!   [GROUP BY …]`,
//! * [`ast`] — the statement/expression tree,
//! * [`exec`] — an executor that runs statements against a
//!   [`hypdb_table::Table`],
//! * [`render`] — SQL *generation*: given the covariates HypDB inferred,
//!   renders the rewritten query `Q^rw` of Listing 2/3 as SQL text, so
//!   analysts can run the de-biased query on their own engine.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod render;

pub use ast::{Expr, Literal, SelectItem, Statement};
pub use exec::{execute, ResultSet};
pub use parser::{parse_query, ParseError};
pub use render::{render_query, render_rewritten, RewriteSpec};
