//! Executor: runs parsed statements against any [`Scan`] storage —
//! monolithic [`Table`](hypdb_table::Table) or sharded store alike.
//! WHERE evaluation and GROUP BY counting run on the shared
//! shard-parallel kernels of `hypdb-table`.

use crate::ast::{Expr, SelectItem, Statement};
use hypdb_table::groupby::group_average;
use hypdb_table::{AttrId, ColRef, Predicate, Scan};
use std::collections::BTreeSet;
use std::fmt;

/// Execution errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Column not found / non-numeric aggregate input, etc.
    Table(hypdb_table::Error),
    /// A selected bare column is not in GROUP BY.
    NotGrouped(String),
    /// Unsupported construct for this executor.
    Unsupported(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Table(e) => write!(f, "{e}"),
            ExecError::NotGrouped(c) => {
                write!(f, "column `{c}` must appear in GROUP BY")
            }
            ExecError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<hypdb_table::Error> for ExecError {
    fn from(e: hypdb_table::Error) -> Self {
        ExecError::Table(e)
    }
}

/// A materialised query result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column headers.
    pub columns: Vec<String>,
    /// Row values, stringified (averages with full precision).
    pub rows: Vec<Vec<String>>,
}

impl fmt::Display for ResultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.columns.join(" | "))?;
        for r in &self.rows {
            writeln!(f, "{}", r.join(" | "))?;
        }
        Ok(())
    }
}

/// Compiles a WHERE expression to a table predicate. Values absent from
/// a column's dictionary simply never match.
pub fn compile_expr<S: Scan + ?Sized>(table: &S, expr: &Expr) -> Result<Predicate, ExecError> {
    Ok(match expr {
        Expr::Eq(col, lit) => Predicate::eq(table, col, &lit.0)?,
        Expr::NotEq(col, lit) => Predicate::Not(Box::new(Predicate::eq(table, col, &lit.0)?)),
        Expr::In(col, lits) => Predicate::is_in(table, col, lits.iter().map(|l| l.0.as_str()))?,
        Expr::And(a, b) => Predicate::and([compile_expr(table, a)?, compile_expr(table, b)?]),
        Expr::Or(a, b) => Predicate::Or(vec![compile_expr(table, a)?, compile_expr(table, b)?]),
        Expr::Not(e) => Predicate::Not(Box::new(compile_expr(table, e)?)),
    })
}

/// Executes a statement. The `FROM` name is not checked — the caller
/// supplies the table it refers to.
pub fn execute<S: Scan + ?Sized>(stmt: &Statement, table: &S) -> Result<ResultSet, ExecError> {
    // Validate select list against GROUP BY.
    let grouped: BTreeSet<&str> = stmt.group_by.iter().map(String::as_str).collect();
    for item in &stmt.items {
        if let SelectItem::Column(c) = item {
            if !grouped.contains(c.as_str()) {
                return Err(ExecError::NotGrouped(c.clone()));
            }
        }
    }

    let rows = match &stmt.where_clause {
        Some(e) => compile_expr(table, e)?.select(table),
        None => table.all_rows(),
    };

    let group_attrs: Vec<AttrId> = stmt
        .group_by
        .iter()
        .map(|c| table.attr(c))
        .collect::<Result<_, _>>()?;

    // Aggregates in select order.
    let mut avg_attrs: Vec<AttrId> = Vec::new();
    let mut distinct_attrs: Vec<AttrId> = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Avg(c) => avg_attrs.push(table.attr(c)?),
            SelectItem::CountDistinct(c) => distinct_attrs.push(table.attr(c)?),
            _ => {}
        }
    }

    let agg = group_average(table, &rows, &group_attrs, &avg_attrs)?;

    // count(DISTINCT c) needs per-group distinct sets; computed in a
    // second pass only when requested.
    let distinct_counts: Vec<Vec<u64>> = if distinct_attrs.is_empty() {
        Vec::new()
    } else {
        use hypdb_table::hash::FxHashMap;
        let mut per_group: FxHashMap<Box<[u32]>, Vec<BTreeSet<u32>>> = FxHashMap::default();
        let gcols: Vec<ColRef<'_>> = group_attrs.iter().map(|&a| table.col(a)).collect();
        let dcols: Vec<ColRef<'_>> = distinct_attrs.iter().map(|&a| table.col(a)).collect();
        let mut key = vec![0u32; group_attrs.len()];
        for row in rows.iter() {
            for (slot, col) in key.iter_mut().zip(&gcols) {
                *slot = col.at(row);
            }
            let sets = per_group
                .entry(key.clone().into_boxed_slice())
                .or_insert_with(|| vec![BTreeSet::new(); distinct_attrs.len()]);
            for (set, col) in sets.iter_mut().zip(&dcols) {
                set.insert(col.at(row));
            }
        }
        agg.iter()
            .map(|g| {
                per_group
                    .get(&g.key)
                    .map(|sets| sets.iter().map(|s| s.len() as u64).collect())
                    .unwrap_or_else(|| vec![0; distinct_attrs.len()])
            })
            .collect()
    };

    // Assemble output rows in select order.
    let columns: Vec<String> = stmt.items.iter().map(|i| i.to_string()).collect();
    let mut out_rows = Vec::with_capacity(agg.len());
    for (gi, g) in agg.iter().enumerate() {
        let mut row = Vec::with_capacity(stmt.items.len());
        let mut avg_i = 0;
        let mut dist_i = 0;
        for item in &stmt.items {
            match item {
                SelectItem::Column(c) => {
                    let pos = stmt
                        .group_by
                        .iter()
                        .position(|g| g == c)
                        .expect("validated");
                    let attr = group_attrs[pos];
                    row.push(table.dict(attr).value(g.key[pos]).to_string());
                }
                SelectItem::Avg(_) => {
                    row.push(format!("{}", g.averages[avg_i]));
                    avg_i += 1;
                }
                SelectItem::CountStar => row.push(g.count.to_string()),
                SelectItem::CountDistinct(_) => {
                    row.push(distinct_counts[gi][dist_i].to_string());
                    dist_i += 1;
                }
            }
        }
        out_rows.push(row);
    }
    Ok(ResultSet {
        columns,
        rows: out_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use hypdb_table::{Table, TableBuilder};

    fn flights() -> Table {
        let mut b = TableBuilder::new(["Carrier", "Airport", "Delayed"]);
        for (c, a, d, n) in [
            ("AA", "COS", "0", 8u32),
            ("AA", "COS", "1", 2),
            ("AA", "ROC", "1", 4),
            ("AA", "ROC", "0", 1),
            ("UA", "COS", "1", 1),
            ("UA", "COS", "0", 3),
            ("UA", "ROC", "1", 6),
            ("UA", "ROC", "0", 4),
            ("DL", "COS", "0", 5),
        ] {
            for _ in 0..n {
                b.push_row([c, a, d]).unwrap();
            }
        }
        b.finish()
    }

    fn run(sql: &str) -> ResultSet {
        let t = flights();
        execute(&parse_query(sql).unwrap(), &t).unwrap()
    }

    #[test]
    fn group_by_average() {
        let rs = run("SELECT Carrier, avg(Delayed) FROM F GROUP BY Carrier");
        assert_eq!(rs.columns, vec!["Carrier", "avg(Delayed)"]);
        assert_eq!(rs.rows.len(), 3);
        // AA: 6/15 = 0.4
        assert_eq!(rs.rows[0][0], "AA");
        assert_eq!(rs.rows[0][1], "0.4");
    }

    #[test]
    fn where_in_filters() {
        let rs = run("SELECT Carrier, avg(Delayed) FROM F \
             WHERE Carrier IN ('AA','UA') AND Airport = 'ROC' GROUP BY Carrier");
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][1], "0.8"); // AA at ROC: 4/5
        assert_eq!(rs.rows[1][1], "0.6"); // UA at ROC: 6/10
    }

    #[test]
    fn count_star_and_distinct() {
        let rs = run("SELECT Airport, count(*), count(DISTINCT Carrier) FROM F GROUP BY Airport");
        // COS: 19 rows, 3 carriers; ROC: 15 rows, 2 carriers.
        assert_eq!(rs.rows[0], vec!["COS", "19", "3"]);
        assert_eq!(rs.rows[1], vec!["ROC", "15", "2"]);
    }

    #[test]
    fn global_aggregate_without_group() {
        let rs = run("SELECT count(*) FROM F");
        assert_eq!(rs.rows, vec![vec!["34".to_string()]]);
    }

    #[test]
    fn ungrouped_column_rejected() {
        let t = flights();
        let stmt = parse_query("SELECT Carrier FROM F").unwrap();
        assert!(matches!(execute(&stmt, &t), Err(ExecError::NotGrouped(_))));
    }

    #[test]
    fn unknown_column_errors() {
        let t = flights();
        let stmt = parse_query("SELECT avg(Nope) FROM F").unwrap();
        assert!(matches!(execute(&stmt, &t), Err(ExecError::Table(_))));
    }

    #[test]
    fn unknown_value_matches_nothing() {
        let rs = run("SELECT Carrier, avg(Delayed) FROM F WHERE Carrier = 'ZZ' GROUP BY Carrier");
        assert!(rs.rows.is_empty());
    }

    #[test]
    fn not_and_or() {
        let rs = run("SELECT Carrier, count(*) FROM F \
             WHERE NOT (Carrier = 'AA' OR Carrier = 'UA') GROUP BY Carrier");
        assert_eq!(rs.rows, vec![vec!["DL".to_string(), "5".to_string()]]);
    }

    #[test]
    fn noteq_predicate() {
        let rs = run("SELECT Carrier, count(*) FROM F WHERE Airport <> 'COS' GROUP BY Carrier");
        assert_eq!(rs.rows.len(), 2); // only AA, UA fly ROC
    }
}
