//! Tokeniser for the OLAP dialect.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Token {
    /// Keyword or bare identifier (keywords are matched
    /// case-insensitively by the parser).
    Ident(String),
    /// `'quoted string'` with `''` escapes resolved.
    Str(String),
    /// Numeric literal, kept in written form.
    Num(String),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `=`.
    Eq,
    /// `<>` or `!=`.
    NotEq,
    /// `*`.
    Star,
    /// `.` (qualified names).
    Dot,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Num(s) => write!(f, "{s}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Eq => write!(f, "="),
            Token::NotEq => write!(f, "<>"),
            Token::Star => write!(f, "*"),
            Token::Dot => write!(f, "."),
        }
    }
}

/// Lexer errors: the offending position and a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset in the input.
    pub pos: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenises `input`.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '<' if bytes.get(i + 1) == Some(&b'>') => {
                tokens.push(Token::NotEq);
                i += 2;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::NotEq);
                i += 2;
            }
            '\'' => {
                // String literal with '' escapes.
                let mut s = String::new();
                let start = i;
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LexError {
                                pos: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.') {
                    // A digit followed by '.' then non-digit is a
                    // qualified name like `1.x` — not supported; treat
                    // '.' as part of the number only when followed by a
                    // digit.
                    if bytes[i] == b'.'
                        && !bytes
                            .get(i + 1)
                            .is_some_and(|b| (*b as char).is_ascii_digit())
                    {
                        break;
                    }
                    i += 1;
                }
                tokens.push(Token::Num(input[start..i].to_string()));
            }
            c if c.is_alphabetic() || c == '_' || c == '"' => {
                if c == '"' {
                    // Double-quoted identifier.
                    let start = i;
                    i += 1;
                    let mut s = String::new();
                    loop {
                        match bytes.get(i) {
                            None => {
                                return Err(LexError {
                                    pos: start,
                                    message: "unterminated quoted identifier".into(),
                                })
                            }
                            Some(b'"') => {
                                i += 1;
                                break;
                            }
                            Some(&b) => {
                                s.push(b as char);
                                i += 1;
                            }
                        }
                    }
                    tokens.push(Token::Ident(s));
                } else {
                    let start = i;
                    while i < bytes.len() {
                        let c = bytes[i] as char;
                        if c.is_alphanumeric() || c == '_' {
                            i += 1;
                        } else {
                            break;
                        }
                    }
                    tokens.push(Token::Ident(input[start..i].to_string()));
                }
            }
            other => {
                return Err(LexError {
                    pos: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_query_tokens() {
        let toks = tokenize("SELECT avg(Delayed) FROM FlightData").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("SELECT".into()),
                Token::Ident("avg".into()),
                Token::LParen,
                Token::Ident("Delayed".into()),
                Token::RParen,
                Token::Ident("FROM".into()),
                Token::Ident("FlightData".into()),
            ]
        );
    }

    #[test]
    fn string_escapes() {
        let toks = tokenize("'O''Hare'").unwrap();
        assert_eq!(toks, vec![Token::Str("O'Hare".into())]);
    }

    #[test]
    fn numbers_and_operators() {
        let toks = tokenize("x = 1, y <> 2.5, z != 3").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("x".into()),
                Token::Eq,
                Token::Num("1".into()),
                Token::Comma,
                Token::Ident("y".into()),
                Token::NotEq,
                Token::Num("2.5".into()),
                Token::Comma,
                Token::Ident("z".into()),
                Token::NotEq,
                Token::Num("3".into()),
            ]
        );
    }

    #[test]
    fn quoted_identifier() {
        let toks = tokenize("\"Departure Time\"").unwrap();
        assert_eq!(toks, vec![Token::Ident("Departure Time".into())]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'abc").is_err());
        assert!(tokenize("\"abc").is_err());
    }

    #[test]
    fn unexpected_character_errors() {
        let err = tokenize("a ; b").unwrap_err();
        assert!(err.message.contains(";"));
        assert_eq!(err.pos, 2);
    }

    #[test]
    fn count_star_tokens() {
        let toks = tokenize("count(*)").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("count".into()),
                Token::LParen,
                Token::Star,
                Token::RParen,
            ]
        );
    }
}
