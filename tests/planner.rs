//! The PR-7 planner property: the cost model's per-table strategy
//! choice — direct segment scan vs marginalise-from-cached-superset,
//! plus lattice-descent intermediates and speculation pruning — decides
//! *how* each contingency table is computed, never what it contains.
//! Forcing either extreme (`PlanForce::Scan`, `PlanForce::Marginalise`)
//! at any worker count must reproduce the cost-based reports
//! byte-for-byte.

use hypdb::causal::{CiConfig, CiOracle, CiStatement, DataOracle, PlanForce};
use hypdb::core::{wire, AnalyzeRequest, HypDbConfig, OracleCache};
use hypdb::datasets as ds;
use hypdb::exec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    exec::set_global_threads(threads);
    let out = f();
    exec::set_global_threads(0);
    out
}

const FORCES: [PlanForce; 3] = [PlanForce::Cost, PlanForce::Scan, PlanForce::Marginalise];

#[test]
fn forced_strategies_keep_reports_byte_identical() {
    // Full analyze pipeline on cancer + adult: the wire body (canonical
    // JSON, timings zeroed) is the strongest equality we can assert.
    let cases = [
        (
            ds::cancer_data(2_000, 1),
            "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData GROUP BY Lung_Cancer",
            "cancer",
        ),
        (
            ds::adult_data(&ds::AdultConfig {
                rows: 4_000,
                seed: 1994,
            }),
            "SELECT Gender, avg(Income) FROM AdultData GROUP BY Gender",
            "adult",
        ),
    ];
    for (table, sql, name) in &cases {
        let req = AnalyzeRequest::new(*name, *sql);
        let mut base: Option<String> = None;
        for force in FORCES {
            for threads in [1usize, 4] {
                let mut cfg = HypDbConfig::default();
                cfg.ci.batch.force = force;
                let cache = Arc::new(OracleCache::new());
                let body = with_threads(threads, || {
                    wire::report_body(
                        &wire::analyze_cached(table, &req, &cfg, Some(&cache)).expect("analysis"),
                    )
                });
                let stats = cache.stats();
                match force {
                    PlanForce::Scan => assert_eq!(
                        stats.marginalised_from_superset, 0,
                        "{name}: forced scans must never derive"
                    ),
                    PlanForce::Marginalise => assert!(
                        stats.marginalised_from_superset > 0,
                        "{name}: forced marginalisation must derive, got {stats:?}"
                    ),
                    PlanForce::Cost => {}
                }
                match &base {
                    None => base = Some(body),
                    Some(b) => assert_eq!(
                        &body, b,
                        "{name}: force={force:?} threads={threads} changed bytes"
                    ),
                }
            }
        }
    }
}

#[test]
fn forced_strategies_agree_on_random_statement_batches() {
    // Randomized property: on generated datasets with known DAGs, a
    // random batch of CI statements (duplicates and shared conditioning
    // sets included) settles to bit-identical outcomes under every
    // strategy × thread count, and matches call-at-a-time evaluation.
    for seed in [3u64, 17] {
        let data = ds::random_data(&ds::RandomDataConfig {
            nodes: 6,
            rows: 3_000,
            seed,
            ..ds::RandomDataConfig::default()
        });
        let table = &data.table;
        let n = table.schema().len();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9);
        let mut stmts = Vec::new();
        for _ in 0..24 {
            let x = rng.gen_range(0..n);
            let mut y = rng.gen_range(0..n - 1);
            if y >= x {
                y += 1;
            }
            let mut z: Vec<usize> = (0..n).filter(|&v| v != x && v != y).collect();
            for k in (1..z.len()).rev() {
                z.swap(k, rng.gen_range(0..=k));
            }
            z.truncate(rng.gen_range(0..=2));
            stmts.push(CiStatement::new(x, y, z));
        }
        let sequential: Vec<_> = {
            let o = DataOracle::over_all_attrs(table, table.all_rows(), CiConfig::default());
            stmts.iter().map(|s| o.test(s.x, s.y, &s.z)).collect()
        };
        for force in FORCES {
            for threads in [1usize, 4] {
                let mut cfg = CiConfig::default();
                cfg.batch.force = force;
                let o = DataOracle::over_all_attrs(table, table.all_rows(), cfg);
                let batched = with_threads(threads, || o.test_batch(&stmts));
                assert_eq!(
                    batched, sequential,
                    "seed={seed} force={force:?} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn speculation_pruning_skips_round_tails() {
    // A grow-style round whose first statement already hits: the
    // speculative tail (everything past the first wave) must be
    // skipped, counted, and invisible in the returned index.
    let data = ds::random_data(&ds::RandomDataConfig {
        nodes: 8,
        rows: 3_000,
        seed: 5,
        ..ds::RandomDataConfig::default()
    });
    let table = &data.table;
    let n = table.schema().len();
    let stmts: Vec<CiStatement> = (1..n).map(|y| CiStatement::new(0, y, vec![])).collect();
    let o = DataOracle::over_all_attrs(table, table.all_rows(), CiConfig::default());
    let lazy = stmts.iter().position(|s| !o.independent(s.x, s.y, &s.z));
    let fresh = DataOracle::over_all_attrs(table, table.all_rows(), CiConfig::default());
    assert_eq!(fresh.find_first(&stmts, false), lazy);
}
