//! Cross-crate integration tests: the full HypDB pipeline on every
//! evaluation dataset, checked against the paper's qualitative claims
//! (and, for CancerData, against the known ground-truth DAG).

use hypdb::datasets as ds;
use hypdb::prelude::*;

fn headline(report: &AnalysisReport) -> (&hypdb::core::ContextReport, f64, f64) {
    let ctx = &report.contexts[0];
    let naive = ctx.sql_diff.as_ref().expect("two levels")[0];
    let total = ctx
        .total_effect
        .as_ref()
        .expect("effect")
        .diff
        .as_ref()
        .expect("two levels")[0];
    (ctx, naive, total)
}

#[test]
fn flight_simpson_paradox_detected_and_removed() {
    let table = ds::flight_data(&ds::FlightConfig {
        rows: 43_853,
        total_attrs: 101,
        ..ds::FlightConfig::default()
    });
    let q = Query::from_sql(
        "SELECT Carrier, avg(Delayed) FROM FlightData \
         WHERE Carrier IN ('AA','UA') AND Airport IN ('COS','MFE','MTJ','ROC') \
         GROUP BY Carrier",
        &table,
    )
    .expect("query");
    let report = HypDb::new(&table).analyze(&q).expect("analysis");

    // Discovery: Airport must be among the covariates; the FD and key
    // columns must have been dropped.
    assert!(
        report.covariates.contains(&"Airport".to_string()),
        "{:?}",
        report.covariates
    );
    assert!(report
        .dropped_fd
        .iter()
        .any(|(a, b)| a == "AirportWAC" && b == "Airport"));
    assert!(report.dropped_keys.contains(&"FlightId".to_string()));

    let (ctx, naive, total) = headline(&report);
    // Bias detected.
    assert!(ctx.bias_total.biased);
    // Simpson: the naive and adjusted differences have opposite signs,
    // both significant.
    assert!(
        naive.signum() != total.signum(),
        "expected trend reversal: naive {naive}, total {total}"
    );
    assert!(ctx.sql_significance[0].p_value < 0.01);
    assert!(ctx.total_effect.as_ref().unwrap().significance[0].p_value < 0.01);
    // Airport is the top explanation; the top triple is (UA, ROC, 1) —
    // the Fig 1(d) narrative.
    assert_eq!(ctx.explanations.coarse[0].name, "Airport");
    let top = &ctx.explanations.fine[0];
    assert_eq!(
        (
            top.t_value.as_str(),
            top.y_value.as_str(),
            top.z_value.as_str()
        ),
        ("UA", "1", "ROC")
    );
}

#[test]
fn berkeley_reversal_on_real_counts() {
    let table = ds::berkeley_data();
    let q = Query::from_sql(
        "SELECT Gender, avg(Accepted) FROM BerkeleyData GROUP BY Gender",
        &table,
    )
    .expect("query");
    let report = HypDb::new(&table)
        .with_covariates(["Department"])
        .expect("attr")
        .analyze(&q)
        .expect("analysis");
    let (ctx, naive, total) = headline(&report);
    assert!(ctx.bias_total.biased);
    // Naive: men ahead by ~14 points (exact, data is deterministic).
    assert!((naive.abs() - 0.1416).abs() < 0.01, "naive {naive}");
    // Adjusted: the gap reverses (women slightly ahead).
    assert!(naive.signum() != total.signum());
    assert!(total.abs() < 0.08, "adjusted gap is small: {total}");
    // Department explains everything.
    assert!(ctx.explanations.coarse[0].responsibility > 0.99);
}

#[test]
fn adult_income_gap_explained_by_mediators() {
    let table = ds::adult_data(&ds::AdultConfig {
        rows: 48_842,
        seed: 1994,
    });
    let q = Query::from_sql(
        "SELECT Gender, avg(Income) FROM AdultData GROUP BY Gender",
        &table,
    )
    .expect("query");
    let report = HypDb::new(&table).analyze(&q).expect("analysis");
    // The FD and the key column are dropped.
    assert!(report
        .dropped_fd
        .iter()
        .any(|(a, _)| a == "EducationNum" || a == "Education"));
    assert!(report.dropped_keys.contains(&"Fnlwgt".to_string()));

    let (ctx, naive, total) = headline(&report);
    assert!(ctx.bias_total.biased);
    // Headline rates ≈ 30% vs 11% (naive gap ≈ 0.17…0.19).
    assert!(naive.abs() > 0.12, "naive {naive}");
    // After adjustment the gap collapses (paper: 0.25 vs 0.23).
    assert!(total.abs() < 0.05, "adjusted {total}");
    // MaritalStatus carries the most responsibility (paper: 0.58).
    assert_eq!(ctx.explanations.coarse[0].name, "MaritalStatus");
    assert!(ctx.explanations.coarse[0].responsibility > 0.3);
}

#[test]
fn staples_no_direct_income_effect() {
    let table = ds::staples_data(&ds::StaplesConfig {
        rows: 120_000,
        seed: 2012,
    });
    let q = Query::from_sql(
        "SELECT Income, avg(Price) FROM StaplesData GROUP BY Income",
        &table,
    )
    .expect("query");
    let report = HypDb::new(&table).analyze(&q).expect("analysis");
    let ctx = &report.contexts[0];
    // The naive association is large and significant.
    assert!(ctx.sql_diff.as_ref().unwrap()[0].abs() > 0.15);
    assert!(ctx.sql_significance[0].p_value < 0.01);
    // Distance explains all of it; no direct effect remains.
    assert_eq!(ctx.explanations.coarse[0].name, "Distance");
    let direct = ctx.direct_effects.first().expect("direct effect");
    assert!(direct.diff.as_ref().unwrap()[0].abs() < 0.02);
    assert!(direct.significance[0].p_value > 0.01);
}

#[test]
fn cancer_direct_effect_null_against_ground_truth() {
    // Seed note: this test asserts statistical outcomes for one fixed
    // sample, so the seed is part of the test. The workspace's vendored
    // `rand` (xoshiro256++) produces different streams than upstream
    // rand's ChaCha12 StdRng; under the old seed (2018) the CD phase-I
    // search hit a Berkson false positive (Fatigue flagged through the
    // Car_Accident collider) and the adjusted total collapsed. Seed 1
    // lands in the typical set: exact parents {Genetics, Smoking},
    // total ≈ 0.12 (analytic ATE ≈ 0.11), direct ≈ 0.
    let table = ds::cancer_data(2_000, 1);
    let q = Query::from_sql(
        "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData GROUP BY Lung_Cancer",
        &table,
    )
    .expect("query");
    let report = HypDb::new(&table).analyze(&q).expect("analysis");
    let (ctx, naive, total) = headline(&report);
    // Fig 4: ~0.60 vs ~0.77 naive; total stays significant, direct is
    // null (no direct edge in the Fig 7 DAG).
    assert!(naive > 0.08, "naive {naive}");
    assert!(total > 0.05, "total {total}");
    assert!(ctx.total_effect.as_ref().unwrap().significance[0].p_value < 0.05);
    let direct = ctx.direct_effects.first().expect("direct effect");
    assert!(
        direct.diff.as_ref().unwrap()[0].abs() < 0.05,
        "direct {:?}",
        direct.diff
    );
    assert!(direct.significance[0].p_value > 0.01);
    // Discovered covariates ⊆ true parents of Lung_Cancer ∪ their
    // ancestors' boundary; in practice CD finds the exact parents.
    let dag = ds::cancer_dag();
    let truth: Vec<&str> = dag
        .parent_set(dag.node("Lung_Cancer").unwrap())
        .into_iter()
        .map(|v| dag.name(v))
        .collect();
    for c in &report.covariates {
        assert!(
            truth.contains(&c.as_str()),
            "covariate {c} not a true parent ({truth:?})"
        );
    }
}

#[test]
fn sql_round_trip_matches_builder_pipeline() {
    // The SQL front end and the query builder must drive identical
    // analyses.
    let table = ds::cancer_data(1_500, 4);
    let q1 = Query::from_sql(
        "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData GROUP BY Lung_Cancer",
        &table,
    )
    .expect("query");
    let q2 = QueryBuilder::new("Lung_Cancer")
        .outcome("Car_Accident")
        .from_name("CancerData")
        .build(&table)
        .expect("query");
    let r1 = HypDb::new(&table).analyze(&q1).expect("analysis");
    let r2 = HypDb::new(&table).analyze(&q2).expect("analysis");
    assert_eq!(r1.covariates, r2.covariates);
    assert_eq!(r1.contexts[0].sql_answers, r2.contexts[0].sql_answers);
}

#[test]
fn rewritten_sql_parses_and_mentions_adjustment() {
    let table = ds::berkeley_data();
    let q = Query::from_sql(
        "SELECT Gender, avg(Accepted) FROM BerkeleyData GROUP BY Gender",
        &table,
    )
    .expect("query");
    let report = HypDb::new(&table)
        .with_covariates(["Department"])
        .expect("attr")
        .analyze(&q)
        .expect("analysis");
    let sql = &report.rewritten.total_sql;
    assert!(sql.contains("WITH Blocks AS"));
    assert!(sql.contains("HAVING count(DISTINCT Gender) = 2"));
    assert!(sql.contains("Department"));
}
