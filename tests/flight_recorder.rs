//! Flight-recorder integration suite: the request journal's
//! structural byte-identity across worker counts, the retained-trace
//! ring behind `/debug/traces` under concurrent load, the
//! `/debug/requests` and `/debug/config` documents, and end-to-end
//! record-and-replay byte identity.
//!
//! Like the rest of the serve suite this runs at the ambient
//! `HYPDB_THREADS` × `HYPDB_SHARD_ROWS` CI matrix point: every
//! structural journal field is a pure function of the request
//! sequence and the canonical request bytes, so every leg must
//! observe identical structural lines.

use hypdb::core::wire;
use hypdb::serve::journal::structural_view;
use hypdb::serve::{client, replay, Registry, ServeConfig, Server, ServerHandle};

const CANCER_SQL: &str =
    "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData GROUP BY Lung_Cancer";

fn start(mut cfg: ServeConfig, rows: usize) -> ServerHandle {
    cfg.addr = "127.0.0.1:0".into();
    let mut reg = Registry::new();
    reg.insert(
        "cancer",
        &Registry::builtin_dataset("cancer", rows).expect("builtin cancer"),
    );
    Server::start(cfg, reg).expect("server starts")
}

fn temp_journal(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("hypdb_test_{tag}_{}.jsonl", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

/// Drives the same short sequential mixed workload against a server:
/// a cold analyze, a hot (cached) repeat, a detect, and a GET.
fn drive_sequential(handle: &ServerHandle) {
    let hot = wire::AnalyzeRequest::new("cancer", CANCER_SQL).canonical_json();
    for body in [&hot, &hot] {
        let resp = client::post_json(handle.addr(), "/analyze", body).expect("analyze");
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    let resp = client::post_json(handle.addr(), "/detect", &hot).expect("detect");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let resp = client::get(handle.addr(), "/datasets").expect("datasets");
    assert_eq!(resp.status, 200);
}

#[test]
fn journal_structural_fields_are_byte_identical_across_worker_counts() {
    let mut journals = Vec::new();
    for workers in [1usize, 4] {
        let path = temp_journal(&format!("structural_w{workers}"));
        let _ = std::fs::remove_file(&path);
        let cfg = ServeConfig {
            workers,
            journal: Some(path.clone()),
            ..ServeConfig::default()
        };
        let handle = start(cfg, 400);
        drive_sequential(&handle);
        handle.shutdown(); // flushes + closes the journal
        let text = std::fs::read_to_string(&path).expect("journal written");
        let _ = std::fs::remove_file(&path);
        journals.push(text);
    }
    let views: Vec<Vec<&str>> = journals
        .iter()
        .map(|text| text.lines().map(structural_view).collect())
        .collect();
    assert_eq!(views[0].len(), 4, "one record per driven request");
    assert_eq!(
        views[0], views[1],
        "structural journal fields must not depend on the worker count"
    );
    // Timed lines differ (wall clock), structural views do not.
    for line in journals[0].lines() {
        assert!(
            line.contains(",\"timing\":{"),
            "every record carries timing"
        );
        assert!(serde_json::parse(line).is_ok(), "every record is JSON");
    }
    // The journal's own structural content: cold miss, then hit, then
    // the detect lane; the GET /datasets record has no request.
    assert!(views[0][0].contains("\"cache\":\"miss\""));
    assert!(views[0][1].contains("\"cache\":\"hit\""));
    assert!(views[0][2].contains("\"path\":\"/detect\""));
    assert!(views[0][3].contains("\"path\":\"/datasets\""));
    assert!(views[0][3].contains("\"request\":null"));
    // Planner deltas live in the non-structural tail (their
    // scan-vs-marginalise split is scheduling-dependent at
    // HYPDB_THREADS > 1), but their presence pattern is stable: oracle
    // work on the cold miss, null on the cache hit.
    let lines: Vec<&str> = journals[0].lines().collect();
    assert!(
        lines[0].contains("\"planner\":{"),
        "misses record oracle work"
    );
    assert!(
        lines[1].contains("\"planner\":null"),
        "hits do no oracle work"
    );
}

#[test]
fn request_id_header_matches_the_journal_record() {
    let path = temp_journal("req_id");
    let _ = std::fs::remove_file(&path);
    let cfg = ServeConfig {
        journal: Some(path.clone()),
        ..ServeConfig::default()
    };
    let handle = start(cfg, 300);
    let body = wire::AnalyzeRequest::new("cancer", CANCER_SQL).canonical_json();
    let resp = client::post_json(handle.addr(), "/analyze", &body).expect("analyze");
    let id = resp
        .header("X-Hypdb-Request-Id")
        .expect("every response carries a request id")
        .to_string();
    assert_eq!(id, "req-00000001");
    handle.shutdown();
    let text = std::fs::read_to_string(&path).expect("journal written");
    let _ = std::fs::remove_file(&path);
    assert!(text.contains(&format!("\"id\":\"{id}\"")));
}

#[test]
fn debug_traces_retains_under_concurrent_load_and_respects_capacity() {
    let cfg = ServeConfig {
        workers: 4,
        debug_traces: 4,
        ..ServeConfig::default()
    };
    let handle = start(cfg, 300);
    let addr = handle.addr();
    std::thread::scope(|scope| {
        for c in 0..4u64 {
            scope.spawn(move || {
                for i in 0..3u64 {
                    let mut req = wire::AnalyzeRequest::new("cancer", CANCER_SQL);
                    req.seed = Some(100 + c * 10 + i);
                    let resp =
                        client::post_json(addr, "/analyze", &req.canonical_json()).expect("req");
                    assert_eq!(resp.status, 200, "{}", resp.body);
                }
            });
        }
    });
    let resp = client::get(addr, "/debug/traces").expect("debug/traces");
    assert_eq!(resp.status, 200);
    let v = serde_json::parse(&resp.body).expect("well-formed JSON");
    assert_eq!(v.get("capacity"), Some(&serde::Value::Int(4)));
    // 12 traces were recorded; only the last `capacity` stay retained.
    assert_eq!(v.get("retained"), Some(&serde::Value::Int(4)));
    let recent = v.get("recent").and_then(|r| r.as_arr()).expect("recent");
    assert_eq!(recent.len(), 4, "ring keeps the last `capacity` traces");
    for entry in recent {
        assert!(entry.get("seq").is_some());
        assert!(entry.get("ms").is_some());
        let spans = entry.get("spans").and_then(|s| s.as_arr()).expect("spans");
        assert!(!spans.is_empty(), "served analyzes produce span trees");
    }
    let slowest = v.get("slowest").and_then(|s| s.as_arr()).expect("slowest");
    assert!(!slowest.is_empty() && slowest.len() <= 4);
    handle.shutdown();
}

#[test]
fn debug_requests_and_config_documents_are_well_formed() {
    let cfg = ServeConfig {
        debug_traces: 8,
        ..ServeConfig::default()
    };
    let handle = start(cfg, 300);
    drive_sequential(&handle);

    let resp = client::get(handle.addr(), "/debug/requests").expect("debug/requests");
    assert_eq!(resp.status, 200);
    let v = serde_json::parse(&resp.body).expect("well-formed JSON");
    assert_eq!(v.get("count"), Some(&serde::Value::Int(4)));
    let records = v.get("records").and_then(|r| r.as_arr()).expect("records");
    assert_eq!(records.len(), 4);
    for rec in records {
        assert_eq!(
            rec.get("schema").and_then(|s| s.as_str()),
            Some("hypdb-journal/v1")
        );
    }

    let resp = client::get(handle.addr(), "/debug/config").expect("debug/config");
    assert_eq!(resp.status, 200);
    let v = serde_json::parse(&resp.body).expect("well-formed JSON");
    assert_eq!(v.get("journal"), Some(&serde::Value::Null));
    assert_eq!(v.get("debug_traces"), Some(&serde::Value::Int(8)));
    assert_eq!(v.get("datasets"), Some(&serde::Value::Int(1)));
    assert!(v.get("workers").is_some());

    // The three debug endpoints are GET-only.
    let resp = client::post_json(handle.addr(), "/debug/traces", "{}").expect("post");
    assert_eq!(resp.status, 405);
    handle.shutdown();
}

#[test]
fn recorded_journal_replays_byte_identical_and_detects_tampering() {
    let path = temp_journal("replay");
    let _ = std::fs::remove_file(&path);
    let cfg = ServeConfig {
        workers: 2,
        journal: Some(path.clone()),
        ..ServeConfig::default()
    };
    let handle = start(cfg, 400);
    let addr = handle.addr();
    // Concurrent mixed recording: hot repeats + unique cold requests.
    std::thread::scope(|scope| {
        for c in 0..3u64 {
            scope.spawn(move || {
                let mut req = wire::AnalyzeRequest::new("cancer", CANCER_SQL);
                req.seed = Some(c);
                let body = req.canonical_json();
                for path in ["/analyze", "/detect", "/analyze"] {
                    let resp = client::post_json(addr, path, &body).expect("record");
                    assert_eq!(resp.status, 200, "{}", resp.body);
                }
            });
        }
    });
    handle.shutdown();
    let text = std::fs::read_to_string(&path).expect("journal written");
    let _ = std::fs::remove_file(&path);
    let parsed = replay::parse_journal(&text);
    assert_eq!(parsed.items.len(), 9);

    // Replay against a fresh recorder-off server: byte identity.
    let replay_cfg = ServeConfig {
        debug_traces: 0,
        ..ServeConfig::default()
    };
    let handle = start(replay_cfg, 400);
    let outcome = replay::replay(handle.addr(), &parsed, 3, replay::Pace::MaxRate);
    assert!(outcome.passed(), "{}", outcome.to_json());
    assert_eq!(outcome.replayed, 9);

    // Tamper with one recorded fingerprint: replay must fail on
    // exactly that record.
    let mut tampered = parsed;
    tampered.items[4].body_fnv = "0000000000000000".into();
    let outcome = replay::replay(handle.addr(), &tampered, 3, replay::Pace::MaxRate);
    assert!(!outcome.passed());
    assert_eq!(outcome.mismatches.len(), 1);
    assert_eq!(outcome.mismatches[0].seq, tampered.items[4].seq);
    assert!(outcome.to_json().contains("\"passed\":false"));
    handle.shutdown();
}

#[test]
fn metrics_exposes_flight_recorder_families() {
    let handle = start(ServeConfig::default(), 300);
    drive_sequential(&handle);
    let resp = client::get(handle.addr(), "/metrics").expect("metrics");
    let body = &resp.body;
    assert!(body.contains("hypdb_requests_total{endpoint=\"analyze\",status=\"200\"} 2"));
    assert!(body.contains("hypdb_requests_total{endpoint=\"detect\",status=\"200\"} 1"));
    assert!(body.contains("hypdb_build_info{"));
    assert!(body.contains("hypdb_uptime_seconds"));
    assert!(body.contains("hypdb_journal_dropped_total"));
    assert!(body.contains("hypdb_window_requests{endpoint=\"analyze\",window=\"1m\"}"));
    assert!(body.contains("hypdb_window_requests{dataset=\"cancer\",window=\"5m\"}"));
    handle.shutdown();
}
