//! `hypdb-serve` integration suite: the wire layer over real sockets,
//! the online/offline byte-identity invariant, cache-counter
//! consistency under concurrent load, and clean admission-control
//! rejections.
//!
//! Everything here runs at the ambient `HYPDB_THREADS` ×
//! `HYPDB_SHARD_ROWS` CI matrix point: reports are thread- and
//! shard-layout-invariant, so every leg must observe identical bytes.

use hypdb::core::wire;
use hypdb::core::HypDbConfig;
use hypdb::datasets as ds;
use hypdb::prelude::*;
use hypdb::serve::client;
use hypdb::serve::{Registry, ServeConfig, Server, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const CANCER_SQL: &str =
    "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData GROUP BY Lung_Cancer";

fn cancer_table(rows: usize) -> Table {
    ds::cancer_data(rows, 1)
}

fn cancer_registry(rows: usize) -> Registry {
    let mut reg = Registry::new();
    reg.insert("cancer", &cancer_table(rows));
    reg
}

/// Starts a server on an ephemeral loopback port.
fn start(mut cfg: ServeConfig, registry: Registry) -> ServerHandle {
    cfg.addr = "127.0.0.1:0".into();
    Server::start(cfg, registry).expect("server starts")
}

fn analyze_request(seed: Option<u64>) -> wire::AnalyzeRequest {
    let mut req = wire::AnalyzeRequest::new("cancer", CANCER_SQL);
    req.seed = seed;
    req
}

fn post_analyze(handle: &ServerHandle, body: &str) -> client::HttpResponse {
    client::post_json(handle.addr(), "/analyze", body).expect("request round-trips")
}

#[test]
fn health_datasets_and_metrics_endpoints() {
    let handle = start(ServeConfig::default(), cancer_registry(300));
    let health = client::get(handle.addr(), "/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "{\"status\":\"ok\",\"datasets\":1}");

    let datasets = client::get(handle.addr(), "/datasets").unwrap();
    assert_eq!(datasets.status, 200);
    let infos: Vec<hypdb::serve::DatasetInfo> = serde_json::from_str(&datasets.body).unwrap();
    assert_eq!(infos.len(), 1);
    assert_eq!(infos[0].name, "cancer");
    assert_eq!(infos[0].rows, 300);

    let metrics = client::get(handle.addr(), "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    assert!(metrics.body.contains("hypdb_requests_total"));
    handle.shutdown();
}

#[test]
fn wire_schema_round_trips_over_http() {
    let handle = start(ServeConfig::default(), cancer_registry(400));
    // Scrambled key order and an explicit null must parse to the same
    // request (and thus hit the same fingerprint) as the compact form.
    let body = format!("{{\"seed\":7,\"sql\":\"{CANCER_SQL}\",\"dataset\":\"cancer\"}}");
    let resp = post_analyze(&handle, &body);
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(resp.header("X-Hypdb-Cache"), Some("miss"));
    let report: AnalysisReport = serde_json::from_str(&resp.body).expect("report parses");
    assert_eq!(report.treatment, "Lung_Cancer");
    assert_eq!(
        report.timings.detection, 0.0,
        "wire bodies zero the timings"
    );

    let canonical = analyze_request(Some(7)).canonical_json();
    let resp2 = post_analyze(&handle, &canonical);
    assert_eq!(resp2.status, 200);
    assert_eq!(
        resp2.header("X-Hypdb-Cache"),
        Some("hit"),
        "equivalent spellings share one cache entry"
    );
    assert_eq!(resp2.body, resp.body);
    handle.shutdown();
}

#[test]
fn malformed_bodies_are_400() {
    let handle = start(ServeConfig::default(), cancer_registry(200));
    for body in [
        "not json at all",
        "{\"dataset\":\"cancer\"}",                          // missing sql
        "{\"dataset\":\"cancer\",\"sql\":\"x\",\"nope\":1}", // unknown field
        "{\"dataset\":\"cancer\",\"sql\":\"SELECT 1\"}",     // unparsable query
    ] {
        let resp = post_analyze(&handle, body);
        assert_eq!(resp.status, 400, "body `{body}` → {}", resp.body);
        assert!(resp.body.contains("\"error\""));
    }
    let m = handle.metrics();
    assert_eq!(m.client_errors, 4);
    assert_eq!(m.cache_misses, 0, "errors are never cached");
    handle.shutdown();
}

#[test]
fn unknown_dataset_and_path_are_404_and_wrong_method_405() {
    let handle = start(ServeConfig::default(), cancer_registry(200));
    let resp = post_analyze(&handle, "{\"dataset\":\"nope\",\"sql\":\"q\"}");
    assert_eq!(resp.status, 404);
    assert!(resp.body.contains("unknown dataset"));

    let resp = client::get(handle.addr(), "/no/such/endpoint").unwrap();
    assert_eq!(resp.status, 404);

    let resp = client::get(handle.addr(), "/analyze").unwrap();
    assert_eq!(resp.status, 405);
    let resp = client::request(handle.addr(), "DELETE", "/healthz", Some("")).unwrap();
    assert_eq!(resp.status, 405);
    handle.shutdown();
}

#[test]
fn oversized_bodies_are_413() {
    let cfg = ServeConfig {
        max_body: 256,
        ..ServeConfig::default()
    };
    let handle = start(cfg, cancer_registry(200));
    let huge = format!(
        "{{\"dataset\":\"cancer\",\"sql\":\"{}\"}}",
        "x".repeat(1024)
    );
    let resp = post_analyze(&handle, &huge);
    assert_eq!(resp.status, 413);
    assert!(resp.body.contains("256"), "{}", resp.body);
    // A sane request still works afterwards on a fresh connection.
    let ok = post_analyze(&handle, &analyze_request(Some(3)).canonical_json());
    assert_eq!(ok.status, 200);
    handle.shutdown();
}

/// The acceptance criterion: a served `/analyze` body is byte-identical
/// to the offline pipeline's — monolithic or sharded storage, any
/// thread count, cached or freshly computed.
#[test]
fn served_reports_are_byte_identical_to_offline() {
    let table = cancer_table(1_000);
    let req = analyze_request(None);
    let base = HypDbConfig::default();

    // Offline, monolithic storage, pinned to one thread.
    hypdb::exec::set_global_threads(1);
    let offline_mono = wire::report_body(&wire::analyze(&table, &req, &base).unwrap());
    hypdb::exec::set_global_threads(0);
    // Offline, deliberately unaligned shard layout, ambient threads.
    let sharded = ShardedTable::from_table(&table, 333);
    let offline_shard = wire::report_body(&wire::analyze(&sharded, &req, &base).unwrap());
    assert_eq!(offline_mono, offline_shard, "storage-layout invariance");

    // Online, against a third layout (the registry's ambient shard
    // size), twice: a cache miss then a cache hit.
    let mut reg = Registry::new();
    reg.insert_sharded("cancer", ShardedTable::from_table(&table, 257));
    let handle = start(ServeConfig::default(), reg);
    let body = req.canonical_json();
    let miss = post_analyze(&handle, &body);
    assert_eq!(miss.status, 200);
    assert_eq!(miss.header("X-Hypdb-Cache"), Some("miss"));
    assert_eq!(miss.body, offline_mono, "served bytes == offline bytes");
    let hit = post_analyze(&handle, &body);
    assert_eq!(hit.header("X-Hypdb-Cache"), Some("hit"));
    assert_eq!(hit.body, offline_mono);
    let m = handle.metrics();
    assert_eq!((m.cache_hits, m.cache_misses), (1, 1));

    // The detect lane agrees with its offline twin too, and with the
    // full report's bias_total.
    let det_offline = wire::detect_body(&wire::detect(&table, &req, &base).unwrap());
    let det = client::post_json(handle.addr(), "/detect", &body).unwrap();
    assert_eq!(det.status, 200);
    assert_eq!(det.body, det_offline);
    let full: AnalysisReport = serde_json::from_str(&miss.body).unwrap();
    let cheap: DetectReport = serde_json::from_str(&det.body).unwrap();
    assert_eq!(cheap.contexts[0].bias, full.contexts[0].bias_total);
    handle.shutdown();
}

/// N threads issuing interleaved identical + distinct requests: every
/// response must be bit-exact, and the cache counters must add up.
#[test]
fn concurrent_mixed_load_is_correct_and_counted() {
    let cfg = ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    };
    let handle = start(cfg, cancer_registry(600));

    // Prime two distinct requests sequentially so the miss count is
    // deterministic (concurrent first-misses may legitimately compute
    // the same report more than once).
    let reqs: Vec<String> = [11u64, 22]
        .iter()
        .map(|&s| analyze_request(Some(s)).canonical_json())
        .collect();
    let expected: Vec<String> = reqs
        .iter()
        .map(|b| {
            let r = post_analyze(&handle, b);
            assert_eq!(r.status, 200);
            r.body
        })
        .collect();
    assert_ne!(expected[0], expected[1], "distinct seeds, distinct bytes");
    assert_eq!(handle.metrics().cache_misses, 2);

    let per_thread = 6usize;
    let n_threads = 8usize;
    std::thread::scope(|scope| {
        for t in 0..n_threads {
            let reqs = &reqs;
            let expected = &expected;
            let handle = &handle;
            scope.spawn(move || {
                for i in 0..per_thread {
                    let which = (t + i) % 2;
                    let resp = post_analyze(handle, &reqs[which]);
                    assert_eq!(resp.status, 200);
                    assert_eq!(
                        resp.body, expected[which],
                        "thread {t} iter {i}: response corrupted under load"
                    );
                    assert_eq!(resp.header("X-Hypdb-Cache"), Some("hit"));
                }
            });
        }
    });

    let m = handle.metrics();
    let total = (n_threads * per_thread) as u64 + 2;
    assert_eq!(m.analyze, total);
    assert_eq!(m.cache_hits, total - 2);
    assert_eq!(m.cache_misses, 2);
    assert_eq!(m.cache_hits + m.cache_misses, m.analyze);
    assert_eq!(handle.cache_len(), 2);
    // Workers decrement the gauge just after closing the socket, so
    // clients can observe their responses a beat earlier: poll.
    poll(2_000, "in-flight gauge to settle", || {
        handle.metrics().in_flight == 0
    });
    handle.shutdown();
}

/// The byte-bounded report cache: a budget that holds roughly one
/// report forces LRU eviction, surfaces the evicted/resident-bytes
/// counters in `/metrics`, and never serves a wrong body.
#[test]
fn report_cache_evicts_by_bytes() {
    let cfg = ServeConfig {
        // Roughly one cancer report (~3.5 KB body + canonical request
        // + overhead): the second distinct request must evict the first.
        cache_bytes: 6 * 1024,
        ..ServeConfig::default()
    };
    let handle = start(cfg, cancer_registry(400));
    let reqs: Vec<String> = [1u64, 2]
        .iter()
        .map(|&s| analyze_request(Some(s)).canonical_json())
        .collect();

    let first = post_analyze(&handle, &reqs[0]);
    assert_eq!(first.header("X-Hypdb-Cache"), Some("miss"));
    assert_eq!(handle.cache_len(), 1);
    let stats = handle.cache_stats();
    assert!(stats.resident_bytes > 0);
    assert_eq!(stats.evictions, 0);

    // A second distinct report exceeds the budget: the LRU entry (the
    // first report) is evicted…
    let second = post_analyze(&handle, &reqs[1]);
    assert_eq!(second.header("X-Hypdb-Cache"), Some("miss"));
    assert_eq!(handle.cache_len(), 1);
    let stats = handle.cache_stats();
    assert_eq!(stats.evictions, 1);
    assert!(stats.evicted_bytes > 0);
    assert!(stats.resident_bytes <= 6 * 1024);

    // …so replaying it recomputes (identical bytes), while the resident
    // report still hits.
    let hit = post_analyze(&handle, &reqs[1]);
    assert_eq!(hit.header("X-Hypdb-Cache"), Some("hit"));
    assert_eq!(hit.body, second.body);
    let recomputed = post_analyze(&handle, &reqs[0]);
    assert_eq!(recomputed.header("X-Hypdb-Cache"), Some("miss"));
    assert_eq!(recomputed.body, first.body, "eviction never changes bytes");

    let metrics = client::get(handle.addr(), "/metrics").unwrap();
    assert!(metrics.body.contains("hypdb_report_cache_resident_bytes"));
    assert!(metrics
        .body
        .contains("hypdb_report_cache_evictions_total 2"));
    handle.shutdown();
}

/// The cross-request multi-query surface: requests over one
/// (dataset, selection) share an oracle cache, so a second request —
/// different seed, same selection — re-runs discovery without a single
/// new table scan, and the batching counters appear in `/metrics`.
#[test]
fn shared_oracle_coalesces_requests_and_exports_stats() {
    let handle = start(ServeConfig::default(), cancer_registry(500));
    let first = post_analyze(&handle, &analyze_request(Some(41)).canonical_json());
    assert_eq!(first.status, 200);
    let after_first = handle.oracle_stats();
    assert!(
        after_first.batched_statements > 0,
        "discovery must route through the planner: {after_first:?}"
    );
    assert!(after_first.groups_planned > 0);
    assert!(after_first.table_scans > 0);

    // Different seed => different report, but the same WHERE selection:
    // every contingency table the second run needs is already resident.
    let second = post_analyze(&handle, &analyze_request(Some(42)).canonical_json());
    assert_eq!(second.status, 200);
    assert_ne!(second.body, first.body);
    let after_second = handle.oracle_stats();
    assert_eq!(
        after_second.table_scans, after_first.table_scans,
        "same selection: the shared joint serves the second request"
    );
    assert!(after_second.batched_statements > after_first.batched_statements);

    let metrics = client::get(handle.addr(), "/metrics").unwrap();
    let line = metrics
        .body
        .lines()
        .find(|l| l.starts_with("hypdb_oracle_batched_statements_total"))
        .expect("batching counter exported");
    let value: u64 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
    assert_eq!(value, after_second.batched_statements);
    assert!(metrics.body.contains("hypdb_oracle_table_scans_total"));
    assert!(metrics.body.contains("hypdb_oracle_scans_direct_total"));
    assert!(metrics
        .body
        .contains("hypdb_oracle_speculative_skipped_total"));
    let bytes_line = metrics
        .body
        .lines()
        .find(|l| l.starts_with("hypdb_oracle_cache_bytes"))
        .expect("cache bytes gauge exported");
    let bytes: u64 = bytes_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert!(bytes > 0, "resident contingency tables must be accounted");
    handle.shutdown();
}

fn read_raw(stream: &mut TcpStream) -> String {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    String::from_utf8_lossy(&raw).into_owned()
}

fn poll(deadline_ms: u64, what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_millis(deadline_ms);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Admission control: with one worker pinned and the one queue slot
/// taken, further connections get an immediate, clean 503 — and the
/// held requests still complete afterwards.
#[test]
fn queue_overflow_returns_clean_503() {
    let cfg = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        timeout_ms: 10_000,
        ..ServeConfig::default()
    };
    let handle = start(cfg, cancer_registry(100));
    let addr = handle.addr();

    // Hold the single worker with a deliberately incomplete request…
    let mut held = TcpStream::connect(addr).unwrap();
    held.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
    held.flush().unwrap();
    poll(5_000, "worker to pick the held request up", || {
        handle.metrics().in_flight == 1
    });

    // …and fill the one queue slot with another.
    let mut queued = TcpStream::connect(addr).unwrap();
    queued.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
    queued.flush().unwrap();
    poll(5_000, "admission queue to fill", || {
        handle.metrics().queue_depth == 1
    });

    // Every further connection is rejected with a 503 by the acceptor.
    for i in 0..3 {
        let mut c = TcpStream::connect(addr).unwrap();
        let raw = read_raw(&mut c);
        assert!(
            raw.starts_with("HTTP/1.1 503 "),
            "connection {i} got: {raw:?}"
        );
        assert!(raw.contains("admission queue is full"));
    }
    assert_eq!(handle.metrics().rejected, 3);

    // Releasing the held requests lets both complete normally.
    held.write_all(b"\r\n").unwrap();
    let raw = read_raw(&mut held);
    assert!(raw.starts_with("HTTP/1.1 200 "), "{raw:?}");
    queued.write_all(b"\r\n").unwrap();
    let raw = read_raw(&mut queued);
    assert!(raw.starts_with("HTTP/1.1 200 "), "{raw:?}");

    let m = handle.metrics();
    assert_eq!(m.requests, 2, "rejected connections never reach a worker");
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let cfg = ServeConfig {
        workers: 1,
        timeout_ms: 10_000,
        ..ServeConfig::default()
    };
    let handle = start(cfg, cancer_registry(150));
    let addr = handle.addr();
    let ok = client::get(addr, "/healthz").unwrap();
    assert_eq!(ok.status, 200);

    // Park a request mid-flight, then shut down on another thread: the
    // drain must wait for — not kill — the in-flight request.
    let mut held = TcpStream::connect(addr).unwrap();
    held.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
    held.flush().unwrap();
    poll(5_000, "worker to pick the held request up", || {
        handle.metrics().in_flight == 1
    });
    let joiner = std::thread::spawn(move || handle.shutdown());
    std::thread::sleep(Duration::from_millis(100));
    held.write_all(b"\r\n").unwrap();
    let raw = read_raw(&mut held);
    assert!(
        raw.starts_with("HTTP/1.1 200 "),
        "in-flight request must complete through shutdown, got {raw:?}"
    );
    joiner.join().expect("shutdown returns after draining");
}
