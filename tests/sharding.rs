//! The sharded-storage equivalence invariant: for **any shard size and
//! any worker count**, every pipeline output over a `ShardedTable` is
//! **byte-identical** to the monolithic path. Codes agree because the
//! global dictionary merges in first-appearance order; scans agree
//! because chunk layouts are pure functions of the selection and
//! partials merge in ascending row order; RNG streams agree because
//! seeds derive from configuration alone.
//!
//! Reports are compared as serialized JSON with the wall-clock timings
//! zeroed (timings are the one legitimately nondeterministic field).

use hypdb::datasets as ds;
use hypdb::exec;
use hypdb::prelude::*;
use hypdb::store::{env_shard_rows, read_csv_shards};
use hypdb::table::csv::read_csv;

fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    exec::set_global_threads(threads);
    let out = f();
    exec::set_global_threads(0);
    out
}

/// Serializes a report with timings zeroed, for byte comparison.
fn report_json(report: &AnalysisReport) -> String {
    let mut stamped = report.clone();
    stamped.timings = hypdb::core::Timings::default();
    serde_json::to_string(&stamped).expect("serialize")
}

/// Shard sizes the suite always pins (regardless of environment).
fn shard_sizes() -> Vec<usize> {
    vec![1024, 4096]
}

#[test]
fn cancer_analyze_reports_byte_identical_across_shardings() {
    let table = ds::cancer_data(2_000, 1);
    let q = Query::from_sql(
        "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData GROUP BY Lung_Cancer",
        &table,
    )
    .expect("query");
    let base = report_json(&with_threads(1, || {
        HypDb::new(&table).analyze(&q).expect("analysis")
    }));
    for shard_rows in shard_sizes() {
        let sharded = ShardedTable::from_table(&table, shard_rows);
        for threads in [1, 4] {
            let report = with_threads(threads, || {
                HypDb::new(&sharded).analyze(&q).expect("analysis")
            });
            assert_eq!(
                report_json(&report),
                base,
                "shard_rows={shard_rows} threads={threads}"
            );
        }
    }
}

#[test]
fn adult_analyze_reports_byte_identical_across_shardings() {
    let table = ds::adult_data(&ds::AdultConfig {
        rows: 6_000,
        seed: 1994,
    });
    let q = Query::from_sql(
        "SELECT Gender, avg(Income) FROM AdultData GROUP BY Gender",
        &table,
    )
    .expect("query");
    let base = report_json(&with_threads(1, || {
        HypDb::new(&table).analyze(&q).expect("analysis")
    }));
    for shard_rows in shard_sizes() {
        let sharded = ShardedTable::from_table(&table, shard_rows);
        for threads in [1, 4] {
            let report = with_threads(threads, || {
                HypDb::new(&sharded).analyze(&q).expect("analysis")
            });
            assert_eq!(
                report_json(&report),
                base,
                "shard_rows={shard_rows} threads={threads}"
            );
        }
    }
}

#[test]
fn ambient_env_configuration_is_equivalent() {
    // The CI matrix leg: runs at the *ambient* `HYPDB_THREADS` ×
    // `HYPDB_SHARD_ROWS` combination without overriding either — the
    // pinned tests above force their own thread counts, so this is the
    // only place the two environment axes compose. The monolithic
    // baseline is computed at the same ambient thread count (threads
    // never change results), isolating the storage layout.
    let Some(shard_rows) = env_shard_rows() else {
        return; // monolithic leg: covered by the baselines above
    };
    let table = ds::cancer_data(2_000, 1);
    let q = Query::from_sql(
        "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData GROUP BY Lung_Cancer",
        &table,
    )
    .expect("query");
    let base = report_json(&HypDb::new(&table).analyze(&q).expect("analysis"));
    let sharded = ShardedTable::from_table(&table, shard_rows);
    let report = report_json(&HypDb::new(&sharded).analyze(&q).expect("analysis"));
    assert_eq!(report, base, "ambient shard_rows={shard_rows}");
}

#[test]
fn discovery_identical_on_streamed_shards() {
    // End-to-end through the *builder* path (local dictionaries merged
    // at seal time), not just the from_table re-partitioning: stream
    // the rows through a ShardedTableBuilder and re-run discovery.
    let table = ds::cancer_data(1_500, 7);
    let mut builder = ShardedTableBuilder::new(
        table.schema().attrs().iter().map(|a| a.name.clone()),
        257, // deliberately unaligned shard size
    );
    for row in 0..table.nrows() as u32 {
        let values: Vec<&str> = table
            .schema()
            .attr_ids()
            .map(|a| table.value(a, row))
            .collect();
        builder.push_row(values).expect("arity");
    }
    let sharded = builder.finish();
    let q = Query::from_sql(
        "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData GROUP BY Lung_Cancer",
        &table,
    )
    .expect("query");
    let mono = HypDb::new(&table).discover(&q).expect("discovery");
    let shrd = HypDb::new(&sharded).discover(&q).expect("discovery");
    assert_eq!(mono, shrd);
}

#[test]
fn streaming_csv_ingest_matches_monolithic_encoding() {
    let table = ds::cancer_data(500, 3);
    let mut csv = Vec::new();
    hypdb::table::csv::write_csv(&table, &mut csv).expect("write");
    let mono = read_csv(&csv[..]).expect("read");
    for shard_rows in [1usize, 64, 333, 10_000] {
        let sharded = read_csv_shards(&csv[..], shard_rows).expect("read sharded");
        assert_eq!(sharded.nrows(), mono.nrows());
        for a in mono.schema().attr_ids() {
            assert_eq!(
                sharded.dict(a).values(),
                mono.column(a).dict().values(),
                "shard_rows={shard_rows}"
            );
            for row in 0..mono.nrows() as u32 {
                assert_eq!(Scan::code(&sharded, a, row), mono.code(a, row));
            }
        }
    }
}

#[test]
fn sql_execution_identical_on_shards() {
    let table = ds::flight_data(&ds::FlightConfig {
        rows: 5_000,
        ..ds::FlightConfig::default()
    });
    let stmt = parse_query(
        "SELECT Carrier, count(*), avg(Delayed), count(DISTINCT Airport) FROM F \
         WHERE Carrier IN ('AA','UA') GROUP BY Carrier",
    )
    .expect("parse");
    let base = hypdb::sql::exec::execute(&stmt, &table).expect("execute");
    for shard_rows in [512usize, 1024, 4096] {
        let sharded = ShardedTable::from_table(&table, shard_rows);
        let rs = hypdb::sql::exec::execute(&stmt, &sharded).expect("execute");
        assert_eq!(rs, base, "shard_rows={shard_rows}");
    }
}
