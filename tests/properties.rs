//! Property-based tests (proptest) on the core invariants:
//! information-theoretic identities, Patefield marginal preservation,
//! the adjustment formula's degenerate cases, d-separation axioms, and
//! SQL round-trips.

use hypdb::core::effect::adjusted_averages;
use hypdb::graph::dag::Dag;
use hypdb::graph::dsep::d_separated_pair;
use hypdb::stats::crosstab::CrossTab;
use hypdb::stats::entropy::{entropy_miller_madow, entropy_plugin, mi_from_matrix};
use hypdb::stats::independence::{chi2_test, MitConfig, Strata};
use hypdb::stats::math::{chi2_sf, gamma_p, gamma_q, ln_gamma};
use hypdb::stats::patefield::sample_table;
use hypdb::table::{Predicate, TableBuilder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Plug-in entropy is within [0, ln(#categories)] and invariant to
    /// zero-count categories; Miller–Madow dominates plug-in.
    #[test]
    fn entropy_bounds(counts in proptest::collection::vec(0u64..500, 1..20)) {
        let support = counts.iter().filter(|&&c| c > 0).count();
        let h = entropy_plugin(counts.iter().copied());
        prop_assert!(h >= 0.0);
        prop_assert!(h <= (support.max(1) as f64).ln() + 1e-9);
        let hmm = entropy_miller_madow(counts.iter().copied());
        prop_assert!(hmm + 1e-12 >= h);
        // Zero-count invariance.
        let mut padded = counts.clone();
        padded.push(0);
        prop_assert!((entropy_plugin(padded.iter().copied()) - h).abs() < 1e-12);
    }

    /// Mutual information is non-negative, symmetric, and bounded by
    /// min(H(X), H(Y)).
    #[test]
    fn mi_properties(cells in proptest::collection::vec(0u64..200, 6)) {
        let (r, c) = (2usize, 3usize);
        let mi = mi_from_matrix(&cells, r, c);
        prop_assert!(mi >= 0.0);
        // Symmetry: transpose.
        let mut tr = vec![0u64; 6];
        for i in 0..r {
            for j in 0..c {
                tr[j * r + i] = cells[i * c + j];
            }
        }
        let mi_t = mi_from_matrix(&tr, c, r);
        prop_assert!((mi - mi_t).abs() < 1e-10);
        // Bound by marginal entropies.
        let rows: Vec<u64> = (0..r).map(|i| cells[i*c..(i+1)*c].iter().sum()).collect();
        let cols: Vec<u64> = (0..c).map(|j| (0..r).map(|i| cells[i*c+j]).sum()).collect();
        let hx = entropy_plugin(rows);
        let hy = entropy_plugin(cols);
        prop_assert!(mi <= hx.min(hy) + 1e-9);
    }

    /// Patefield tables preserve the marginals of any observed table.
    #[test]
    fn patefield_preserves_marginals(
        cells in proptest::collection::vec(0u64..60, 12),
        seed in 0u64..1000,
    ) {
        let tab = CrossTab::new(3, 4, cells);
        if tab.total() == 0 {
            return Ok(());
        }
        let compact = tab.compact();
        let mut rng = StdRng::seed_from_u64(seed);
        let sampled = sample_table(&mut rng, &compact.row_sums(), &compact.col_sums());
        prop_assert_eq!(sampled.row_sums(), compact.row_sums());
        prop_assert_eq!(sampled.col_sums(), compact.col_sums());
        prop_assert_eq!(sampled.total(), compact.total());
    }

    /// Gamma-family identities: P + Q = 1, ln Γ satisfies the recurrence
    /// Γ(x+1) = x·Γ(x), and the χ² survival function is monotone.
    #[test]
    fn gamma_identities(a in 0.1f64..30.0, x in 0.0f64..60.0) {
        prop_assert!((gamma_p(a, x) + gamma_q(a, x) - 1.0).abs() < 1e-9);
        let lhs = ln_gamma(a + 1.0);
        let rhs = a.ln() + ln_gamma(a);
        prop_assert!((lhs - rhs).abs() < 1e-8, "recurrence at {a}");
        // Monotonicity of the survival function in x.
        let df = a.max(0.5);
        prop_assert!(chi2_sf(x, df) + 1e-12 >= chi2_sf(x + 1.0, df));
    }

    /// The χ² test is invariant to swapping X and Y.
    #[test]
    fn chi2_symmetric(cells in proptest::collection::vec(1u64..100, 4)) {
        let tab = CrossTab::new(2, 2, cells.clone());
        let swapped = CrossTab::new(2, 2, vec![cells[0], cells[2], cells[1], cells[3]]);
        let a = chi2_test(&Strata::single(tab));
        let b = chi2_test(&Strata::single(swapped));
        prop_assert!((a.p_value - b.p_value).abs() < 1e-9);
    }

    /// d-separation axioms on random DAGs: symmetry, and conditioning
    /// on a node's full non-descendant separator (its parents) blocks
    /// every non-descendant.
    #[test]
    fn dsep_symmetry(edges in proptest::collection::vec((0usize..7, 0usize..7), 0..15),
                     x in 0usize..7, y in 0usize..7, z in 0usize..7) {
        let mut g = Dag::new(7);
        for (u, v) in edges {
            if u != v {
                g.add_edge(u, v);
            }
        }
        if x == y {
            return Ok(());
        }
        let cond: Vec<usize> = if z != x && z != y { vec![z] } else { vec![] };
        prop_assert_eq!(
            d_separated_pair(&g, x, y, &cond),
            d_separated_pair(&g, y, x, &cond)
        );
    }

    /// Local Markov property: a node is d-separated from every
    /// non-descendant non-parent given its parents.
    #[test]
    fn dsep_local_markov(edges in proptest::collection::vec((0usize..6, 0usize..6), 0..12)) {
        let mut g = Dag::new(6);
        for (u, v) in edges {
            if u != v {
                g.add_edge(u, v);
            }
        }
        for v in 0..6 {
            let parents = g.parent_set(v);
            let descendants = g.descendants(v);
            for w in 0..6 {
                if w == v || parents.contains(&w) || descendants.contains(&w) {
                    continue;
                }
                prop_assert!(
                    d_separated_pair(&g, v, w, &parents),
                    "node {v} not separated from non-descendant {w} by parents {parents:?}"
                );
            }
        }
    }

    /// The adjustment formula with Z = ∅ equals the plain group-by
    /// average, and adjusted averages always lie in the outcome's range.
    #[test]
    fn adjustment_degenerate_case(rows in proptest::collection::vec((0u32..2, 0u32..2, 0u32..3), 40..200)) {
        // Need both treatment levels present.
        if !(rows.iter().any(|r| r.0 == 0) && rows.iter().any(|r| r.0 == 1)) {
            return Ok(());
        }
        let mut b = TableBuilder::new(["T", "Y", "Z"]);
        for (t, y, z) in &rows {
            b.push_row([t.to_string().as_str(), y.to_string().as_str(), z.to_string().as_str()])
                .expect("arity");
        }
        let table = b.finish();
        let t = table.attr("T").expect("attr");
        let y = table.attr("Y").expect("attr");
        let z = table.attr("Z").expect("attr");
        let all = table.all_rows();
        let cfg = MitConfig { permutations: 20, ..MitConfig::default() };
        let naive = adjusted_averages(&table, &all, t, &[0, 1], &[y], &[], &cfg, 1)
            .expect("estimate");
        // Against direct group averages.
        let g = hypdb::table::groupby::group_average(&table, &all, &[t], &[y]).expect("avg");
        for (i, row) in g.iter().enumerate() {
            prop_assert!((naive.adjusted[i][0] - row.averages[0]).abs() < 1e-12);
        }
        // Adjusted estimates stay within [0, 1] for a 0/1 outcome.
        let adj = adjusted_averages(&table, &all, t, &[0, 1], &[y], &[z], &cfg, 1)
            .expect("estimate");
        for level in &adj.adjusted {
            prop_assert!(level[0] >= -1e-12 && level[0] <= 1.0 + 1e-12);
        }
        prop_assert!(adj.matched_blocks <= adj.total_blocks);
        prop_assert!(adj.matched_fraction >= 0.0 && adj.matched_fraction <= 1.0 + 1e-12);
    }

    /// Predicate algebra: select(p AND q) == select(p) ∩ select(q) and
    /// select(NOT p) is the complement.
    #[test]
    fn predicate_algebra(vals in proptest::collection::vec((0u32..3, 0u32..3), 10..80)) {
        let mut b = TableBuilder::new(["a", "b"]);
        for (x, y) in &vals {
            b.push_row([x.to_string().as_str(), y.to_string().as_str()]).expect("arity");
        }
        let t = b.finish();
        let a = t.attr("a").expect("attr");
        let bb = t.attr("b").expect("attr");
        let p = Predicate::Eq(a, 0);
        let q = Predicate::Eq(bb, 1);
        let and = Predicate::and([p.clone(), q.clone()]).select(&t);
        let isect = p.select(&t).intersect(&q.select(&t));
        prop_assert_eq!(and, isect);
        let not_p = Predicate::Not(Box::new(p.clone())).select(&t);
        let comp = p.select(&t).complement(t.nrows() as u32);
        prop_assert_eq!(not_p, comp);
    }

    /// SQL statements survive a render → parse round trip.
    #[test]
    fn sql_roundtrip(carrier in "[A-Z]{2}", airport in "[A-Z]{3}") {
        let sql = format!(
            "SELECT Carrier, avg(Delayed) FROM F WHERE Carrier = '{carrier}' \
             AND Airport IN ('{airport}', 'XXX') GROUP BY Carrier"
        );
        let stmt = hypdb::sql::parse_query(&sql).expect("parse");
        let rendered = stmt.to_string();
        let reparsed = hypdb::sql::parse_query(&rendered).expect("reparse");
        prop_assert_eq!(stmt, reparsed);
    }
}
