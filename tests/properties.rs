//! Randomized property tests on the core invariants:
//! information-theoretic identities, Patefield marginal preservation,
//! the adjustment formula's degenerate cases, d-separation axioms, and
//! SQL round-trips.
//!
//! Written against the in-repo `rand` stub rather than proptest (the
//! offline build has no registry access): each property is checked on a
//! few hundred seeded pseudo-random cases, so failures reproduce
//! deterministically.

use hypdb::core::effect::adjusted_averages;
use hypdb::graph::dag::Dag;
use hypdb::graph::dsep::d_separated_pair;
use hypdb::stats::crosstab::CrossTab;
use hypdb::stats::entropy::{entropy_miller_madow, entropy_plugin, mi_from_matrix};
use hypdb::stats::independence::{chi2_test, MitConfig, Strata};
use hypdb::stats::math::{chi2_sf, gamma_p, gamma_q, ln_gamma};
use hypdb::stats::patefield::sample_table;
use hypdb::store::ShardedTable;
use hypdb::table::contingency::{ContingencyTable, Stratified};
use hypdb::table::groupby::{group_average, group_counts};
use hypdb::table::{AttrId, Predicate, RowSet, TableBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 200;

fn counts_vec(rng: &mut StdRng, len: usize, max: u64) -> Vec<u64> {
    (0..len).map(|_| rng.gen_range(0..max)).collect()
}

/// Plug-in entropy is within [0, ln(#categories)] and invariant to
/// zero-count categories; Miller–Madow dominates plug-in.
#[test]
fn entropy_bounds() {
    let mut rng = StdRng::seed_from_u64(101);
    for _ in 0..CASES {
        let len = rng.gen_range(1..20usize);
        let counts = counts_vec(&mut rng, len, 500);
        let support = counts.iter().filter(|&&c| c > 0).count();
        let h = entropy_plugin(counts.iter().copied());
        assert!(h >= 0.0);
        assert!(h <= (support.max(1) as f64).ln() + 1e-9);
        let hmm = entropy_miller_madow(counts.iter().copied());
        assert!(hmm + 1e-12 >= h);
        // Zero-count invariance.
        let mut padded = counts.clone();
        padded.push(0);
        assert!((entropy_plugin(padded.iter().copied()) - h).abs() < 1e-12);
    }
}

/// Mutual information is non-negative, symmetric, and bounded by
/// min(H(X), H(Y)).
#[test]
fn mi_properties() {
    let mut rng = StdRng::seed_from_u64(102);
    for _ in 0..CASES {
        let cells = counts_vec(&mut rng, 6, 200);
        let (r, c) = (2usize, 3usize);
        let mi = mi_from_matrix(&cells, r, c);
        assert!(mi >= 0.0);
        // Symmetry: transpose.
        let mut tr = vec![0u64; 6];
        for i in 0..r {
            for j in 0..c {
                tr[j * r + i] = cells[i * c + j];
            }
        }
        let mi_t = mi_from_matrix(&tr, c, r);
        assert!((mi - mi_t).abs() < 1e-10);
        // Bound by marginal entropies.
        let rows: Vec<u64> = (0..r)
            .map(|i| cells[i * c..(i + 1) * c].iter().sum())
            .collect();
        let cols: Vec<u64> = (0..c)
            .map(|j| (0..r).map(|i| cells[i * c + j]).sum())
            .collect();
        let hx = entropy_plugin(rows);
        let hy = entropy_plugin(cols);
        assert!(mi <= hx.min(hy) + 1e-9);
    }
}

/// Patefield tables preserve the marginals of any observed table.
#[test]
fn patefield_preserves_marginals() {
    let mut rng = StdRng::seed_from_u64(103);
    for seed in 0..CASES as u64 {
        let cells = counts_vec(&mut rng, 12, 60);
        let tab = CrossTab::new(3, 4, cells);
        if tab.total() == 0 {
            continue;
        }
        let compact = tab.compact();
        let mut sampler = StdRng::seed_from_u64(seed);
        let sampled = sample_table(&mut sampler, &compact.row_sums(), &compact.col_sums());
        assert_eq!(sampled.row_sums(), compact.row_sums());
        assert_eq!(sampled.col_sums(), compact.col_sums());
        assert_eq!(sampled.total(), compact.total());
    }
}

/// Gamma-family identities: P + Q = 1, ln Γ satisfies the recurrence
/// Γ(x+1) = x·Γ(x), and the χ² survival function is monotone.
#[test]
fn gamma_identities() {
    let mut rng = StdRng::seed_from_u64(104);
    for _ in 0..CASES {
        let a = rng.gen_range(0.1f64..30.0);
        let x = rng.gen_range(0.0f64..60.0);
        assert!((gamma_p(a, x) + gamma_q(a, x) - 1.0).abs() < 1e-9);
        let lhs = ln_gamma(a + 1.0);
        let rhs = a.ln() + ln_gamma(a);
        assert!((lhs - rhs).abs() < 1e-8, "recurrence at {a}");
        // Monotonicity of the survival function in x.
        let df = a.max(0.5);
        assert!(chi2_sf(x, df) + 1e-12 >= chi2_sf(x + 1.0, df));
    }
}

/// The χ² test is invariant to swapping X and Y.
#[test]
fn chi2_symmetric() {
    let mut rng = StdRng::seed_from_u64(105);
    for _ in 0..CASES {
        let cells: Vec<u64> = (0..4).map(|_| rng.gen_range(1..100u64)).collect();
        let tab = CrossTab::new(2, 2, cells.clone());
        let swapped = CrossTab::new(2, 2, vec![cells[0], cells[2], cells[1], cells[3]]);
        let a = chi2_test(&Strata::single(tab));
        let b = chi2_test(&Strata::single(swapped));
        assert!((a.p_value - b.p_value).abs() < 1e-9);
    }
}

fn random_dag(rng: &mut StdRng, nodes: usize, max_edges: usize) -> Dag {
    let mut g = Dag::new(nodes);
    for _ in 0..rng.gen_range(0..max_edges) {
        let u = rng.gen_range(0..nodes);
        let v = rng.gen_range(0..nodes);
        if u != v {
            g.add_edge(u, v);
        }
    }
    g
}

/// d-separation is symmetric in its first two arguments.
#[test]
fn dsep_symmetry() {
    let mut rng = StdRng::seed_from_u64(106);
    for _ in 0..CASES {
        let g = random_dag(&mut rng, 7, 15);
        let x = rng.gen_range(0..7usize);
        let y = rng.gen_range(0..7usize);
        let z = rng.gen_range(0..7usize);
        if x == y {
            continue;
        }
        let cond: Vec<usize> = if z != x && z != y { vec![z] } else { vec![] };
        assert_eq!(
            d_separated_pair(&g, x, y, &cond),
            d_separated_pair(&g, y, x, &cond)
        );
    }
}

/// Local Markov property: a node is d-separated from every
/// non-descendant non-parent given its parents.
#[test]
fn dsep_local_markov() {
    let mut rng = StdRng::seed_from_u64(107);
    for _ in 0..CASES {
        let g = random_dag(&mut rng, 6, 12);
        for v in 0..6 {
            let parents = g.parent_set(v);
            let descendants = g.descendants(v);
            for w in 0..6 {
                if w == v || parents.contains(&w) || descendants.contains(&w) {
                    continue;
                }
                assert!(
                    d_separated_pair(&g, v, w, &parents),
                    "node {v} not separated from non-descendant {w} by parents {parents:?}"
                );
            }
        }
    }
}

/// The adjustment formula with Z = ∅ equals the plain group-by
/// average, and adjusted averages always lie in the outcome's range.
#[test]
fn adjustment_degenerate_case() {
    let mut rng = StdRng::seed_from_u64(108);
    for _ in 0..40 {
        let n = rng.gen_range(40..200usize);
        let rows: Vec<(u32, u32, u32)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0..2u32),
                    rng.gen_range(0..2u32),
                    rng.gen_range(0..3u32),
                )
            })
            .collect();
        // Need both treatment levels present.
        if !(rows.iter().any(|r| r.0 == 0) && rows.iter().any(|r| r.0 == 1)) {
            continue;
        }
        let mut b = TableBuilder::new(["T", "Y", "Z"]);
        for (t, y, z) in &rows {
            b.push_row([
                t.to_string().as_str(),
                y.to_string().as_str(),
                z.to_string().as_str(),
            ])
            .expect("arity");
        }
        let table = b.finish();
        let t = table.attr("T").expect("attr");
        let y = table.attr("Y").expect("attr");
        let z = table.attr("Z").expect("attr");
        let all = table.all_rows();
        let cfg = MitConfig {
            permutations: 20,
            ..MitConfig::default()
        };
        let naive =
            adjusted_averages(&table, &all, t, &[0, 1], &[y], &[], &cfg, 1).expect("estimate");
        // Against direct group averages.
        let g = hypdb::table::groupby::group_average(&table, &all, &[t], &[y]).expect("avg");
        for (i, row) in g.iter().enumerate() {
            assert!((naive.adjusted[i][0] - row.averages[0]).abs() < 1e-12);
        }
        // Adjusted estimates stay within [0, 1] for a 0/1 outcome.
        let adj =
            adjusted_averages(&table, &all, t, &[0, 1], &[y], &[z], &cfg, 1).expect("estimate");
        for level in &adj.adjusted {
            assert!(level[0] >= -1e-12 && level[0] <= 1.0 + 1e-12);
        }
        assert!(adj.matched_blocks <= adj.total_blocks);
        assert!(adj.matched_fraction >= 0.0 && adj.matched_fraction <= 1.0 + 1e-12);
    }
}

/// Predicate algebra: select(p AND q) == select(p) ∩ select(q) and
/// select(NOT p) is the complement.
#[test]
fn predicate_algebra() {
    let mut rng = StdRng::seed_from_u64(109);
    for _ in 0..CASES {
        let n = rng.gen_range(10..80usize);
        let mut b = TableBuilder::new(["a", "b"]);
        for _ in 0..n {
            let x = rng.gen_range(0..3u32);
            let y = rng.gen_range(0..3u32);
            b.push_row([x.to_string().as_str(), y.to_string().as_str()])
                .expect("arity");
        }
        let t = b.finish();
        let a = t.attr("a").expect("attr");
        let bb = t.attr("b").expect("attr");
        let p = Predicate::Eq(a, 0);
        let q = Predicate::Eq(bb, 1);
        let and = Predicate::and([p.clone(), q.clone()]).select(&t);
        let isect = p.select(&t).intersect(&q.select(&t));
        assert_eq!(and, isect);
        let not_p = Predicate::Not(Box::new(p.clone())).select(&t);
        let comp = p.select(&t).complement(t.nrows() as u32);
        assert_eq!(not_p, comp);
    }
}

/// `RowSet::slice` agrees with the materialised iterator on every
/// chunk layout — including chunks that straddle shard-sized
/// boundaries, single-element chunks, and empty tails. This is the
/// contract the parallel counting kernels (fixed-chunk partials merged
/// in order) rely on.
#[test]
fn rowset_slice_chunk_boundaries() {
    let mut rng = StdRng::seed_from_u64(111);
    for _ in 0..CASES {
        let n = rng.gen_range(0..200usize);
        let rows = if rng.gen_range(0..2) == 0 {
            RowSet::All(n as u32)
        } else {
            let mut ids: Vec<u32> = (0..n as u32)
                .filter(|_| rng.gen_range(0..3u32) > 0)
                .collect();
            ids.dedup();
            RowSet::Ids(ids)
        };
        let all: Vec<u32> = rows.iter().collect();
        let len = rows.len();
        assert_eq!(all.len(), len);
        // Fixed-size chunks, including a chunk size that never divides
        // evenly and the degenerate 1-row chunk.
        for chunk in [1usize, 7, 64, len.max(1)] {
            let mut glued: Vec<u32> = Vec::with_capacity(len);
            let mut lo = 0usize;
            while lo < len {
                let hi = (lo + chunk).min(len);
                glued.extend(rows.slice(lo..hi));
                lo = hi;
            }
            assert_eq!(glued, all, "chunk={chunk}");
        }
        // Empty slices at every boundary position.
        for pos in [0, len / 2, len] {
            assert_eq!(rows.slice(pos..pos).count(), 0);
        }
    }
}

/// Empty selections and the full-table fast path produce the same
/// contingency/group-by answers on every storage layout.
#[test]
fn selection_edge_cases_on_shards() {
    let mut b = TableBuilder::new(["t", "z"]);
    for i in 0..100u32 {
        b.push_row([
            ((i * 7) % 5).to_string().as_str(),
            (i % 3).to_string().as_str(),
        ])
        .unwrap();
    }
    let mono = b.finish();
    let attrs: Vec<AttrId> = mono.schema().attr_ids().collect();
    for shard_rows in [1usize, 13, 100, 4096] {
        let sharded = ShardedTable::from_table(&mono, shard_rows);
        // Empty selection: no groups, zero-total table.
        let empty = RowSet::Ids(vec![]);
        assert!(group_counts(&sharded, &empty, &attrs).is_empty());
        assert_eq!(
            ContingencyTable::from_table(&sharded, &empty, &attrs).total(),
            0
        );
        // Predicate fast paths.
        assert_eq!(Predicate::True.select(&sharded), RowSet::All(100));
        assert!(Predicate::False.select(&sharded).is_empty());
        // Full-table fast path (RowSet::All) equals the materialised
        // id list.
        let all_ids = RowSet::Ids((0..100).collect());
        assert_eq!(
            ContingencyTable::from_table(&sharded, &sharded.all_rows(), &attrs).cells(),
            ContingencyTable::from_table(&sharded, &all_ids, &attrs).cells()
        );
    }
}

/// Randomized equivalence: every query primitive — predicate
/// selection, contingency counting, group-by counting/averaging, and
/// stratified cross tabs — gives identical answers on a monolithic
/// table and on any sharding of it.
#[test]
fn sharded_matches_monolithic_property() {
    let mut rng = StdRng::seed_from_u64(112);
    for case in 0..40 {
        let n = rng.gen_range(1..400usize);
        let mut b = TableBuilder::new(["t", "y", "z"]);
        for _ in 0..n {
            let t = rng.gen_range(0..4u32);
            let y = rng.gen_range(0..2u32);
            let z = rng.gen_range(0..5u32);
            b.push_row([
                t.to_string().as_str(),
                y.to_string().as_str(),
                z.to_string().as_str(),
            ])
            .expect("arity");
        }
        let mono = b.finish();
        let (t, y, z) = (
            mono.attr("t").expect("attr"),
            mono.attr("y").expect("attr"),
            mono.attr("z").expect("attr"),
        );
        let attrs = [t, y, z];
        let shard_rows = rng.gen_range(1..n + 2);
        let sharded = ShardedTable::from_table(&mono, shard_rows);
        assert_eq!(sharded.n_shards(), n.div_ceil(shard_rows), "case {case}");

        // Predicate selection (per-shard parallel) matches.
        let pred = Predicate::Eq(t, rng.gen_range(0..4u32));
        let rows_mono = pred.select(&mono);
        let rows_shrd = pred.select(&sharded);
        assert_eq!(rows_mono, rows_shrd, "case {case} shard_rows={shard_rows}");

        // Counting kernels match on the selection and on the full table.
        for rows in [&rows_mono, &mono.all_rows()] {
            assert_eq!(
                ContingencyTable::from_table(&mono, rows, &attrs).cells(),
                ContingencyTable::from_table(&sharded, rows, &attrs).cells(),
                "case {case}"
            );
            assert_eq!(
                group_counts(&mono, rows, &attrs[..2]),
                group_counts(&sharded, rows, &attrs[..2]),
                "case {case}"
            );
            let avg_mono = group_average(&mono, rows, &[t], &[y]).expect("avg");
            let avg_shrd = group_average(&sharded, rows, &[t], &[y]).expect("avg");
            assert_eq!(avg_mono, avg_shrd, "case {case}");
            let strata_mono = Stratified::build(&mono, rows, t, y, &[z]);
            let strata_shrd = Stratified::build(&sharded, rows, t, y, &[z]);
            assert_eq!(strata_mono.num_groups(), strata_shrd.num_groups());
            assert_eq!(strata_mono.total(), strata_shrd.total());
        }
    }
}

/// SQL statements survive a render → parse round trip.
#[test]
fn sql_roundtrip() {
    let mut rng = StdRng::seed_from_u64(110);
    let letters: Vec<char> = ('A'..='Z').collect();
    for _ in 0..CASES {
        let carrier: String = (0..2).map(|_| letters[rng.gen_range(0..26usize)]).collect();
        let airport: String = (0..3).map(|_| letters[rng.gen_range(0..26usize)]).collect();
        let sql = format!(
            "SELECT Carrier, avg(Delayed) FROM F WHERE Carrier = '{carrier}' \
             AND Airport IN ('{airport}', 'XXX') GROUP BY Carrier"
        );
        let stmt = hypdb::sql::parse_query(&sql).expect("parse");
        let rendered = stmt.to_string();
        let reparsed = hypdb::sql::parse_query(&rendered).expect("reparse");
        assert_eq!(stmt, reparsed);
    }
}
