//! The determinism invariant of the parallel execution layer: for any
//! fixed seed, every pipeline and test output is **byte-identical** for
//! any worker count (`HYPDB_THREADS ∈ {1, 2, default}`, or any other
//! value). The thread count decides who computes each deterministic
//! chunk — never what is computed.
//!
//! These tests flip the global worker count at runtime
//! ([`hypdb::exec::set_global_threads`]) and compare full outputs with
//! `==`. They are safe to run concurrently with each other precisely
//! *because* of the invariant they check: a mid-run change of the
//! thread count must not change any result.

use hypdb::datasets as ds;
use hypdb::exec;
use hypdb::prelude::*;
use hypdb::stats::independence::{mit, MitConfig, Strata};
use hypdb::stats::patefield::sample_table;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    exec::set_global_threads(threads);
    let out = f();
    exec::set_global_threads(0);
    out
}

#[test]
fn mit_outcomes_identical_at_1_2_and_8_threads() {
    // Many conditioning groups and several permutation chunks.
    let mut rng = StdRng::seed_from_u64(0xD15C);
    let groups: Vec<_> = (0..40)
        .map(|_| sample_table(&mut rng, &[25, 35, 15], &[30, 30, 15]))
        .collect();
    let strata = Strata::new(groups);
    let run = |threads: usize| {
        with_threads(threads, || {
            mit(&strata, 500, &mut StdRng::seed_from_u64(2018))
        })
    };
    let base = run(1);
    for threads in [2, 8] {
        let out = run(threads);
        assert_eq!(out, base, "threads={threads}");
        // Spell the byte-identity out for the three headline fields.
        assert_eq!(out.statistic.to_bits(), base.statistic.to_bits());
        assert_eq!(out.p_value.to_bits(), base.p_value.to_bits());
        assert_eq!(out.ci95, base.ci95);
    }
}

#[test]
fn hymit_early_stop_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(7);
    let groups: Vec<_> = (0..30)
        .map(|_| sample_table(&mut rng, &[3, 2, 2], &[3, 2, 2]))
        .collect();
    let strata = Strata::new(groups);
    let cfg = MitConfig {
        permutations: 1_600,
        early_stop: Some(0.01),
        ..MitConfig::default()
    };
    let run = |threads: usize| {
        with_threads(threads, || {
            hypdb::stats::independence::hymit(&strata, &cfg, &mut StdRng::seed_from_u64(3))
        })
    };
    let base = run(1);
    for threads in [2, 4] {
        assert_eq!(run(threads), base, "threads={threads}");
    }
}

#[test]
fn cancer_pipeline_report_identical_across_thread_counts() {
    // Same data and seed as the ground-truth end-to-end test: the full
    // report (discovery, detection, effects, explanations) must agree
    // bit-for-bit at every worker count.
    let table = ds::cancer_data(2_000, 1);
    let q = Query::from_sql(
        "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData GROUP BY Lung_Cancer",
        &table,
    )
    .expect("query");
    let run = |threads: usize| {
        with_threads(threads, || {
            HypDb::new(&table).analyze(&q).expect("analysis")
        })
    };
    let base = run(1);
    for threads in [2, 4] {
        let report = run(threads);
        assert_eq!(report.covariates, base.covariates, "threads={threads}");
        assert_eq!(report.mediators, base.mediators, "threads={threads}");
        assert_eq!(report.used_fallback, base.used_fallback);
        // Timings legitimately vary; every analytical field is in the
        // per-context reports, which must match exactly.
        assert_eq!(report.contexts, base.contexts, "threads={threads}");
    }
}

#[test]
fn batched_planning_never_changes_a_report_byte() {
    // The PR-5 property: planner grouping, group order, dedup, and the
    // worker count are pure performance choices. For cancer + adult,
    // the full wire body (canonical JSON, timings zeroed) must be
    // byte-identical at batching {on, off} × HYPDB_THREADS {1, 4} —
    // and the batched runs must actually route through the planner.
    use hypdb::core::{wire, HypDbConfig, OracleCache};
    use std::sync::Arc;

    let cases = [
        (
            ds::cancer_data(2_000, 1),
            "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData GROUP BY Lung_Cancer",
            "cancer",
        ),
        (
            ds::adult_data(&ds::AdultConfig {
                rows: 4_000,
                seed: 1994,
            }),
            "SELECT Gender, avg(Income) FROM AdultData GROUP BY Gender",
            "adult",
        ),
    ];
    for (table, sql, name) in &cases {
        let req = hypdb::core::AnalyzeRequest::new(*name, *sql);
        let mut base: Option<String> = None;
        for batched in [true, false] {
            for threads in [1usize, 4] {
                let mut cfg = HypDbConfig::default();
                cfg.ci.batch.enabled = batched;
                let cache = Arc::new(OracleCache::new());
                let body = with_threads(threads, || {
                    wire::report_body(
                        &wire::analyze_cached(table, &req, &cfg, Some(&cache)).expect("analysis"),
                    )
                });
                let stats = cache.stats();
                if batched {
                    assert!(
                        stats.batched_statements > 0 && stats.groups_planned > 0,
                        "{name}: planner must be engaged, got {stats:?}"
                    );
                } else {
                    assert_eq!(stats.batched_statements, 0, "{name}: planner must be off");
                }
                match &base {
                    None => base = Some(body),
                    Some(b) => assert_eq!(
                        &body, b,
                        "{name}: batched={batched} threads={threads} changed bytes"
                    ),
                }
            }
        }
    }
}

#[test]
fn staged_permutation_budgets_never_change_a_report_byte() {
    // The PR-10 property: the staged permutation engine is a pure
    // performance choice. Screening checkpoints settle a verdict only
    // when the full-budget verdict is already implied by the evaluated
    // prefix, and escalation continues the same RNG stream — so for
    // cancer + adult the full wire body must be byte-identical across
    // stages {on, off} × HYPDB_THREADS {1, 4} × plan strategy
    // {Cost, Scan}, and the stages-on runs must actually settle some
    // statements at a screening checkpoint.
    use hypdb::causal::PlanForce;
    use hypdb::core::{wire, HypDbConfig, OracleCache};
    use std::sync::Arc;

    let cases = [
        (
            ds::cancer_data(2_000, 1),
            "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData GROUP BY Lung_Cancer",
            "cancer",
        ),
        (
            ds::adult_data(&ds::AdultConfig {
                rows: 4_000,
                seed: 1994,
            }),
            "SELECT Gender, avg(Income) FROM AdultData GROUP BY Gender",
            "adult",
        ),
    ];
    let mut stage1_settled = 0u64;
    for (table, sql, name) in &cases {
        let req = hypdb::core::AnalyzeRequest::new(*name, *sql);
        let mut base: Option<String> = None;
        for staged in [true, false] {
            for threads in [1usize, 4] {
                for force in [PlanForce::Cost, PlanForce::Scan] {
                    let mut cfg = HypDbConfig::default();
                    // At these row counts the default HyMIT dispatch
                    // (β = 5) settles every statement through the χ²
                    // shortcut, leaving no permutation stream to
                    // stage. Pin β high so every df > 0 statement
                    // takes the real MIT path — the regime staging
                    // exists for, and the one where a verdict-identity
                    // bug would actually move report bytes.
                    cfg.ci.mit.beta = 1e12;
                    cfg.ci.mit.staged = staged;
                    cfg.ci.batch.force = force;
                    let cache = Arc::new(OracleCache::new());
                    let body = with_threads(threads, || {
                        wire::report_body(
                            &wire::analyze_cached(table, &req, &cfg, Some(&cache))
                                .expect("analysis"),
                        )
                    });
                    let stats = cache.stats();
                    if staged {
                        stage1_settled += stats.mit_stage1_settled;
                    } else {
                        assert_eq!(
                            stats.mit_stage1_settled, 0,
                            "{name}: stages off must pin the single-stage path"
                        );
                        assert_eq!(stats.mit_escalated, 0, "{name}: no escalations when off");
                    }
                    match &base {
                        None => base = Some(body),
                        Some(b) => assert_eq!(
                            &body, b,
                            "{name}: staged={staged} threads={threads} force={force:?} \
                             changed bytes"
                        ),
                    }
                }
            }
        }
    }
    assert!(
        stage1_settled > 0,
        "staging must settle some statement at a screening checkpoint"
    );
}

#[test]
fn tracing_and_explain_never_change_a_byte() {
    // The PR-8 property: observability is pure observation. The wire
    // body and the EXPLAIN document must be byte-identical across
    // tracing {off, on} × HYPDB_THREADS {1, 4} × plan strategy
    // {Cost, Scan, Marginalise} — the span collector, the explain
    // sink, and the planner override may change *how* the answer is
    // computed and what is recorded about it, never the answer.
    use hypdb::causal::PlanForce;
    use hypdb::core::{wire, HypDbConfig, OracleCache};
    use std::sync::Arc;

    let cases = [
        (
            ds::cancer_data(2_000, 1),
            "SELECT Lung_Cancer, avg(Car_Accident) FROM CancerData GROUP BY Lung_Cancer",
            "cancer",
        ),
        (
            ds::adult_data(&ds::AdultConfig {
                rows: 4_000,
                seed: 1994,
            }),
            "SELECT Gender, avg(Income) FROM AdultData GROUP BY Gender",
            "adult",
        ),
    ];
    for (table, sql, name) in &cases {
        let mut base: Option<(String, String)> = None;
        for traced in [false, true] {
            for threads in [1usize, 4] {
                for force in [PlanForce::Cost, PlanForce::Scan, PlanForce::Marginalise] {
                    let mut cfg = HypDbConfig::default();
                    cfg.ci.batch.force = force;
                    let mut req = hypdb::core::AnalyzeRequest::new(*name, *sql);
                    let plain_cache = Arc::new(OracleCache::new());
                    let body = with_threads(threads, || {
                        let compute = || {
                            wire::report_body(
                                &wire::analyze_cached(table, &req, &cfg, Some(&plain_cache))
                                    .expect("analysis"),
                            )
                        };
                        if traced {
                            // The HYPDB_TRACE middleware's tracer, minus
                            // the stderr dump.
                            let tracer = hypdb_obs::Tracer::with_explain();
                            let body = hypdb_obs::with_request(&tracer, compute);
                            assert!(
                                !tracer.finish().spans.is_empty(),
                                "{name}: tracer must have observed spans"
                            );
                            body
                        } else {
                            compute()
                        }
                    });
                    req.explain = true;
                    let explain_cache = Arc::new(OracleCache::new());
                    let explained = with_threads(threads, || {
                        let compute = || {
                            let (r, e) =
                                wire::analyze_explained(table, &req, &cfg, Some(&explain_cache))
                                    .expect("explained analysis");
                            wire::explain_body(&r, &e)
                        };
                        if traced {
                            let tracer = hypdb_obs::Tracer::with_explain();
                            hypdb_obs::with_request(&tracer, compute)
                        } else {
                            compute()
                        }
                    });
                    let label =
                        format!("{name}: traced={traced} threads={threads} force={force:?}");
                    match &base {
                        None => base = Some((body, explained)),
                        Some((b, e)) => {
                            assert_eq!(&body, b, "{label} changed the wire body");
                            assert_eq!(&explained, e, "{label} changed the explain body");
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn adult_discovery_identical_across_thread_counts() {
    let table = ds::adult_data(&ds::AdultConfig {
        rows: 8_000,
        seed: 1994,
    });
    let q = Query::from_sql(
        "SELECT Gender, avg(Income) FROM AdultData GROUP BY Gender",
        &table,
    )
    .expect("query");
    let run = |threads: usize| {
        with_threads(threads, || {
            HypDb::new(&table).discover(&q).expect("discovery")
        })
    };
    let base = run(1);
    assert!(
        !base.covariates.is_empty() || !base.mediators.iter().all(Vec::is_empty),
        "discovery should find structure on adult data"
    );
    for threads in [2, 4] {
        assert_eq!(run(threads), base, "threads={threads}");
    }
}
